"""Lockstep SoA replay vs the scalar per-cell oracle: the PR-10 wall.

:mod:`repro.sim.lockstep` advances every cell of a replay group in
lockstep over the group's shared arrival/work arrays.  The contract it
makes is the same one the grouping layer made in PR 7, one level up:
any set of policy and scheme cells replayed through the lockstep
engine leaves every cell's latency pool, utilization counter,
batch-app progress, and final fill state **bit-identical** (``==`` on
raw floats, no tolerance) to the scalar ``run_mix`` oracle — at every
group size (including the wide numpy-masked driver), across all
registry policies, loads, seeds, heterogeneous-scheme groups, and the
divergent deboost/watermark paths that force the scalar fallback.
"""

import pytest

from repro.runtime.spec import PolicySpec, SchemeSpec
from repro.sim.config import CMPConfig
from repro.sim.lockstep import _WIDE_GROUP, lockstep_enabled
from repro.sim.mix_runner import MixRunner
from repro.workloads.mixes import make_mix_specs

LLC_LINES = CMPConfig().llc_lines

#: Every policy in the registry appears, several with schemes attached:
#: a lockstep group is heterogeneous by construction (differing
#: decisions over shared state are what a group compares), so the wall
#: must hold with boost/deboost (ubik), lookahead allocators (ucp,
#: static_lc), thrash-toggling (onoff), and the no-op baselines (fixed,
#: lru) advancing *in the same group*.
MIXED_ROSTER = (
    ("ubik", {"slack": 0.05}, "vantage_sa16"),
    ("ucp", {}, None),
    ("static_lc", {}, "waypart_sa16"),
    ("onoff", {}, None),
    ("ubik", {"slack": 0.0}, None),
    ("fixed", {}, "vantage_sa64"),
    ("lru", {}, None),
    ("ucp", {}, "vantage_sa16"),
)

#: A roster wide enough (>= _WIDE_GROUP cells) to engage the numpy
#: masked arrival driver rather than the python-list narrow path.
WIDE_ROSTER = (
    ("ubik", {"slack": 0.0}, None),
    ("ubik", {"slack": 0.05}, "vantage_sa16"),
    ("ucp", {}, None),
    ("static_lc", {}, None),
    ("onoff", {}, "vantage_sa16"),
    ("fixed", {}, None),
    ("lru", {}, None),
    ("ubik", {"slack": 0.1}, None),
    ("ucp", {}, "waypart_sa16"),
    ("static_lc", {}, "vantage_sa64"),
    ("onoff", {}, None),
    ("ubik", {"slack": 0.05}, "waypart_sa64"),
    ("fixed", {}, "vantage_sa16"),
    ("ucp", {}, "vantage_sa64"),
)


def mix_spec(load=0.2, lc_name="masstree"):
    return make_mix_specs(
        lc_names=[lc_name], loads=[load], mixes_per_combo=1
    )[0]


def build_cells(roster):
    """Fresh policy/scheme objects — both are stateful controllers, so
    every arm (oracle, grouped, lockstep) must get its own."""
    return [
        (
            PolicySpec.of(name, **kwargs).build(),
            SchemeSpec.of(scheme).build(LLC_LINES) if scheme else None,
        )
        for name, kwargs, scheme in roster
    ]


def oracle_grid(runner, spec, roster):
    """The oracle: each cell replayed alone through scalar run_mix."""
    return [
        runner.run_mix(spec, policy, scheme=scheme)
        for policy, scheme in build_cells(roster)
    ]


def lockstep_grid(runner, spec, roster):
    """The same cells advanced in lockstep through one group."""
    return runner.run_mix_group(spec, build_cells(roster), lockstep=True)


def assert_cells_identical(lockstep, oracle):
    """Bit-identity, field by field, then whole-result equality."""
    assert len(lockstep) == len(oracle)
    for got, want in zip(lockstep, oracle):
        for g_inst, o_inst in zip(got.lc_instances, want.lc_instances):
            assert g_inst.latencies == o_inst.latencies  # raw float ==
            assert g_inst.requests_served == o_inst.requests_served
            assert g_inst.activations == o_inst.activations
            assert g_inst.deboosts == o_inst.deboosts
            assert g_inst.watermarks == o_inst.watermarks
        for g_batch, o_batch in zip(got.batch_apps, want.batch_apps):
            assert g_batch.instructions == o_batch.instructions
            assert g_batch.cycles == o_batch.cycles
        assert got.duration_cycles == want.duration_cycles
        assert got == want  # every remaining field, exactly


class TestGroupSizes:
    @pytest.mark.parametrize("size", [1, 2, 4, 8])
    def test_bit_identical_at_every_group_size(self, size):
        """A lockstep group of N cells equals N oracle runs — including
        the degenerate single-cell group."""
        runner = MixRunner(requests=40, seed=5)
        spec = mix_spec(load=0.2)
        roster = MIXED_ROSTER[:size]
        assert_cells_identical(
            lockstep_grid(runner, spec, roster),
            oracle_grid(runner, spec, roster),
        )

    def test_wide_group_engages_masked_driver_and_matches(self):
        """At >= _WIDE_GROUP cells the driver switches to numpy masked
        arrival fan-out; the wall must hold there too."""
        assert len(WIDE_ROSTER) >= _WIDE_GROUP
        runner = MixRunner(requests=40, seed=5)
        spec = mix_spec(load=0.2)
        assert_cells_identical(
            lockstep_grid(runner, spec, WIDE_ROSTER),
            oracle_grid(runner, spec, WIDE_ROSTER),
        )


class TestGridAxes:
    @pytest.mark.parametrize("load", [0.2, 0.6])
    @pytest.mark.parametrize("seed", [5, 2014])
    def test_bit_identical_across_loads_and_seeds(self, load, seed):
        runner = MixRunner(requests=40, seed=seed)
        spec = mix_spec(load=load)
        roster = MIXED_ROSTER[:4]
        assert_cells_identical(
            lockstep_grid(runner, spec, roster),
            oracle_grid(runner, spec, roster),
        )

    @pytest.mark.parametrize("lc_name", ["xapian", "moses"])
    def test_bit_identical_across_lc_workloads(self, lc_name):
        runner = MixRunner(requests=40, seed=5)
        spec = mix_spec(load=0.6, lc_name=lc_name)
        roster = MIXED_ROSTER[:4]
        assert_cells_identical(
            lockstep_grid(runner, spec, roster),
            oracle_grid(runner, spec, roster),
        )


class TestDivergentEvents:
    """Deboosts and watermark firings are the genuinely divergent
    events — the lockstep engine must fall back to the scalar path for
    them and still match the oracle bit for bit."""

    def test_watermark_firing_group_matches(self):
        runner = MixRunner(requests=60, seed=11)
        spec = mix_spec(load=0.5, lc_name="shore")
        roster = WIDE_ROSTER[:8]
        results = oracle_grid(runner, spec, roster)
        fired = sum(
            inst.watermarks for res in results for inst in res.lc_instances
        )
        assert fired > 0  # the config must actually exercise the path
        assert_cells_identical(lockstep_grid(runner, spec, roster), results)

    def test_deboost_firing_wide_group_matches(self):
        """Deboosts under the wide masked driver: divergence and the
        numpy arrival fan-out in the same run."""
        runner = MixRunner(requests=60, seed=4)
        spec = mix_spec(load=0.4, lc_name="shore")
        results = oracle_grid(runner, spec, WIDE_ROSTER)
        deboosts = sum(
            inst.deboosts for res in results for inst in res.lc_instances
        )
        assert deboosts > 0  # the config must actually exercise the path
        assert_cells_identical(
            lockstep_grid(runner, spec, WIDE_ROSTER), results
        )


class TestFinalFillState:
    def _lc_specs(self, runner, spec):
        from repro.sim.engine import LCInstanceSpec

        baseline = runner.baseline(spec.lc_workload, spec.load)
        lc_specs = []
        for instance in range(3):
            arrivals, works = runner.stream(
                spec.lc_workload, spec.load, instance
            )
            lc_specs.append(
                LCInstanceSpec(
                    workload=spec.lc_workload,
                    arrivals=arrivals,
                    works=works,
                    deadline_cycles=baseline.p95_cycles,
                    target_tail_cycles=baseline.tail95_cycles,
                    load=spec.load,
                )
            )
        return lc_specs

    def test_final_fill_and_partition_state_identical(self):
        """Beyond the result documents: each cell's *final* fill state
        — resident lines, targets, effective targets, miss ratio per
        app — must agree exactly after a lockstep group run and the
        scalar oracle run of the same roster."""
        from repro.sim.engine import MixEngine
        from repro.sim.grid_replay import GroupShared
        from repro.sim.lockstep import LockstepEngine, run_lockstep_group

        spec = mix_spec(load=0.2)
        roster = MIXED_ROSTER[:4]

        def final_fill_states(lockstep):
            runner = MixRunner(requests=40, seed=5)
            lc_specs = self._lc_specs(runner, spec)
            engine_cls = LockstepEngine if lockstep else MixEngine
            shared = GroupShared() if lockstep else None
            engines = [
                engine_cls(
                    lc_specs=lc_specs,
                    batch_workloads=list(spec.batch_apps),
                    policy=policy,
                    config=runner.config,
                    scheme=scheme,
                    seed=runner.seed,
                    baseline_lines=float(spec.lc_workload.target_lines),
                    mix_id=spec.mix_id,
                    shared=shared,
                )
                for policy, scheme in build_cells(roster)
            ]
            if lockstep:
                run_lockstep_group(engines)
            else:
                for engine in engines:
                    engine.run()
            return [
                [
                    (
                        app.fill.resident,
                        app.fill.target,
                        app.fill.effective_target,
                        app.fill.miss_ratio(),
                    )
                    for app in engine.apps
                ]
                for engine in engines
            ]

        assert final_fill_states(True) == final_fill_states(False)


class TestEnvToggle:
    def test_lockstep_enabled_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOCKSTEP", raising=False)
        assert lockstep_enabled()  # default on
        for off in ("0", "off", "false", "no", " OFF "):
            monkeypatch.setenv("REPRO_LOCKSTEP", off)
            assert not lockstep_enabled()
        monkeypatch.setenv("REPRO_LOCKSTEP", "1")
        assert lockstep_enabled()

    def test_run_mix_group_honors_toggle(self, monkeypatch):
        """With REPRO_LOCKSTEP=0 a group replays through the grouped
        per-cell loop — and the results are identical either way, which
        is what makes the toggle a pure escape hatch."""
        import repro.sim.mix_runner as mix_runner_module

        calls = []
        real = mix_runner_module.run_lockstep_group

        def spy(engines):
            calls.append(len(engines))
            return real(engines)

        monkeypatch.setattr(mix_runner_module, "run_lockstep_group", spy)
        spec = mix_spec(load=0.2)
        roster = MIXED_ROSTER[:2]

        monkeypatch.setenv("REPRO_LOCKSTEP", "0")
        runner = MixRunner(requests=40, seed=5)
        off_results = runner.run_mix_group(spec, build_cells(roster))
        assert calls == []  # toggle off: lockstep never entered

        monkeypatch.delenv("REPRO_LOCKSTEP", raising=False)
        on_results = runner.run_mix_group(spec, build_cells(roster))
        assert calls == [len(roster)]  # default on: lockstep drove it
        assert on_results == off_results
