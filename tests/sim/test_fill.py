"""Tests for repro.sim.fill — the engine's transient integrator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.schemes import vantage_setassoc, way_partitioning
from repro.core.transient import lost_cycles_exact, transient_length_exact
from repro.monitor.miss_curve import MissCurve
from repro.sim.fill import FillState

C, M = 50.0, 100.0


def curve():
    return MissCurve([0, 1000, 2000, 4000], [0.8, 0.3, 0.15, 0.05])


def make_fill(resident=0.0, target=4000.0, scheme=None):
    return FillState(curve(), C, M, scheme=scheme, resident=resident, target=target)


class TestSteadyState:
    def test_steady_execution(self):
        fill = make_fill(resident=4000.0, target=4000.0)
        adv = fill.advance_accesses(1000.0)
        p = 0.05
        assert adv.misses == pytest.approx(1000 * p)
        assert adv.cycles == pytest.approx(1000 * (C + p * M))

    def test_advance_cycles_steady_inverse(self):
        fill = make_fill(resident=4000.0, target=4000.0)
        budget = 123_456.0
        adv = fill.advance_cycles(budget)
        assert adv.cycles == pytest.approx(budget)
        assert adv.accesses == pytest.approx(budget / (C + 0.05 * M))

    def test_zero_accesses(self):
        fill = make_fill(resident=1000.0)
        adv = fill.advance_accesses(0.0)
        assert adv.cycles == 0.0
        assert adv.misses == 0.0

    def test_validation(self):
        fill = make_fill()
        with pytest.raises(ValueError):
            fill.advance_accesses(-1.0)
        with pytest.raises(ValueError):
            fill.advance_cycles(-1.0)
        with pytest.raises(ValueError):
            fill.set_target(-1.0)
        with pytest.raises(ValueError):
            FillState(curve(), -1.0, M)


class TestGrowth:
    def test_one_line_per_miss(self):
        """The Vantage invariant: lines grown == misses seen."""
        fill = make_fill(resident=500.0, target=4000.0)
        adv = fill.advance_accesses(2000.0)
        assert fill.resident - 500.0 == pytest.approx(adv.misses)

    def test_growth_stops_at_target(self):
        fill = make_fill(resident=0.0, target=1500.0)
        fill.advance_accesses(1e7)
        assert fill.resident == pytest.approx(1500.0)
        assert not fill.filling

    def test_miss_ratio_declines_during_fill(self):
        fill = make_fill(resident=0.0, target=4000.0)
        p0 = fill.miss_ratio()
        fill.advance_accesses(500.0)
        assert fill.miss_ratio() < p0

    def test_shrink_is_immediate(self):
        fill = make_fill(resident=3000.0, target=4000.0)
        fill.set_target(1000.0)
        assert fill.resident == 1000.0
        assert fill.miss_ratio() == pytest.approx(0.3)

    def test_transient_time_matches_analytic(self):
        """The engine's integral equals the Section 5.1 exact sum."""
        fill = make_fill(resident=1000.0, target=3000.0)
        total_cycles = 0.0
        # Many small steps; stop once filled.
        while fill.filling:
            adv = fill.advance_accesses(200.0)
            if not fill.filling:
                # Remove the post-fill steady part of the last chunk.
                break
            total_cycles += adv.cycles
        approx = transient_length_exact(curve(), 1000.0, 3000.0, C, M)
        # total_cycles is within one chunk of the analytic value.
        chunk_cost = 200 * (C + 0.3 * M)
        assert abs(total_cycles - approx) < 2 * chunk_cost

    def test_advance_cycles_growth_inverse(self):
        """advance_cycles and advance_accesses agree on the same path."""
        forward = make_fill(resident=200.0, target=4000.0)
        adv = forward.advance_accesses(1500.0)
        inverse = make_fill(resident=200.0, target=4000.0)
        adv2 = inverse.advance_cycles(adv.cycles)
        assert adv2.accesses == pytest.approx(1500.0, rel=1e-6)
        assert inverse.resident == pytest.approx(forward.resident, rel=1e-6)

    def test_zero_miss_region_stalls_growth(self):
        flat_zero = MissCurve([0, 100, 4000], [0.5, 0.0, 0.0])
        fill = FillState(flat_zero, C, M, resident=200.0, target=4000.0)
        adv = fill.advance_accesses(10_000.0)
        # p=0 at resident=200: no misses, no growth, pure-hit cycles.
        assert adv.misses == pytest.approx(0.0, abs=1e-6)
        assert adv.cycles == pytest.approx(10_000 * C, rel=1e-6)


class TestSchemes:
    def test_way_partition_quantizes_target(self):
        scheme = way_partitioning(4096, 16)  # 256-line ways
        fill = FillState(curve(), C, M, scheme=scheme)
        fill.set_target(1000.0)
        assert fill.target == 768.0  # floor to 3 ways

    def test_way_partition_slow_fill(self):
        scheme = way_partitioning(4096, 16)
        rng = np.random.default_rng(0)
        slow = FillState(curve(), C, M, scheme=scheme, resident=0, target=2048)
        slow.begin_transient(rng)
        fast = make_fill(resident=0.0, target=2048.0)
        adv_slow = slow.advance_accesses(3000.0)
        adv_fast = fast.advance_accesses(3000.0)
        assert slow.resident < fast.resident

    def test_way_partition_assoc_penalty(self):
        scheme = way_partitioning(4096, 16)
        fill = FillState(curve(), C, M, scheme=scheme, resident=256, target=256)
        # One way allocated: heavy associativity penalty on misses.
        assert fill.miss_ratio() > float(curve()(256.0))

    def test_soft_scheme_effective_target(self):
        scheme = vantage_setassoc(4096, 16)
        fill = FillState(curve(), C, M, scheme=scheme)
        fill.set_target(1000.0)
        assert fill.effective_target == pytest.approx(940.0)

    def test_idle_loss_jitter(self):
        scheme = vantage_setassoc(4096, 16)
        rng = np.random.default_rng(1)
        fill = FillState(curve(), C, M, scheme=scheme, resident=900, target=1000)
        before = fill.resident
        losses = 0
        for _ in range(20):
            fill.apply_idle_loss(rng)
        assert fill.resident < before


@settings(max_examples=50, deadline=None)
@given(
    resident_frac=st.floats(min_value=0, max_value=1),
    target_frac=st.floats(min_value=0.01, max_value=1),
    accesses=st.floats(min_value=0, max_value=20_000),
)
def test_property_fill_conservation(resident_frac, target_frac, accesses):
    """Invariants: resident in [start, target], misses == growth while
    filling, cycles == c*n + M*misses."""
    target = 4000.0 * target_frac
    start = min(4000.0 * resident_frac, target)
    fill = FillState(curve(), C, M, resident=start, target=target)
    adv = fill.advance_accesses(accesses)
    assert adv.accesses == pytest.approx(accesses)
    assert start - 1e-9 <= fill.resident <= max(target, start) + 1e-9
    grown = fill.resident - start
    assert adv.misses >= grown - 1e-6
    # abs tolerance covers the engine's sub-epsilon access cutoff.
    assert adv.cycles == pytest.approx(
        C * accesses + M * adv.misses, rel=1e-9, abs=1e-6
    )


@settings(max_examples=50, deadline=None)
@given(
    budget=st.floats(min_value=0, max_value=5e6),
    start_frac=st.floats(min_value=0, max_value=1),
)
def test_property_cycles_inverse_consistent(budget, start_frac):
    start = 4000.0 * start_frac
    a = FillState(curve(), C, M, resident=start, target=4000.0)
    adv = a.advance_cycles(budget)
    assert adv.cycles <= budget + 1e-6
    b = FillState(curve(), C, M, resident=start, target=4000.0)
    adv2 = b.advance_accesses(adv.accesses)
    assert adv2.cycles == pytest.approx(budget, rel=1e-5, abs=1.0)
    assert b.resident == pytest.approx(a.resident, rel=1e-6, abs=1e-3)
