"""Tests for repro.analysis.ascii_plot."""

import pytest

from repro.analysis.ascii_plot import (
    distribution_plot,
    hbar,
    series_plot,
    sparkline,
)


class TestSparkline:
    def test_width(self):
        assert len(sparkline([1, 2, 3], width=30)) == 30

    def test_flat_series(self):
        line = sparkline([5.0] * 10, width=20)
        assert len(set(line)) == 1

    def test_monotone_series_increases_intensity(self):
        line = sparkline(list(range(100)), width=10)
        levels = " .:-=+*#%@"
        assert levels.index(line[-1]) > levels.index(line[0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sparkline([])


class TestHBar:
    def test_full_and_empty(self):
        assert hbar(1.0, width=10) == "#" * 10
        assert hbar(0.0, width=10) == " " * 10

    def test_half(self):
        assert hbar(0.5, width=10).count("#") == 5

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            hbar(1.5)
        with pytest.raises(ValueError):
            hbar(-0.1)


class TestSeriesPlot:
    def test_contains_labels_and_ranges(self):
        text = series_plot({"alpha": [1, 2, 3], "beta": [3, 2, 1]})
        assert "alpha" in text
        assert "beta" in text
        assert "[1," in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            series_plot({})


class TestDistributionPlot:
    def test_renders_all_series(self):
        text = distribution_plot(
            {"Ubik": [1.0, 1.01, 1.02], "UCP": [1.0, 1.3, 1.6]},
            width=30,
            height=8,
        )
        assert "o=Ubik" in text
        assert "u=UCP" in text
        assert text.count("\n") == 8  # height rows + legend

    def test_y_scale_annotated(self):
        text = distribution_plot({"a": [2.0, 4.0]}, width=10, height=5)
        assert "4" in text
        assert "2" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            distribution_plot({})
