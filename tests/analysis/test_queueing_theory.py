"""Pollaczek-Khinchine cross-validation of the queueing substrate."""

import numpy as np
import pytest

from repro.analysis.queueing_theory import (
    ServiceMoments,
    mg1_mean_latency,
    mg1_mean_wait,
    moments_from_samples,
)
from repro.server.queueing import simulate_fixed_service


class TestFormulas:
    def test_validation(self):
        with pytest.raises(ValueError):
            ServiceMoments(0.0, 1.0)
        with pytest.raises(ValueError):
            ServiceMoments(2.0, 1.0)  # E[S^2] < E[S]^2
        moments = ServiceMoments(1.0, 2.0)
        with pytest.raises(ValueError):
            mg1_mean_wait(0.0, moments)
        with pytest.raises(ValueError):
            mg1_mean_wait(1.0, moments)  # rho = 1: unstable
        with pytest.raises(ValueError):
            moments_from_samples([1.0])

    def test_deterministic_service(self):
        # M/D/1: W = rho * E[S] / (2 (1 - rho)).
        moments = ServiceMoments(10.0, 100.0)
        wait = mg1_mean_wait(0.05, moments)  # rho = 0.5
        assert wait == pytest.approx(0.5 * 10.0 / (2 * 0.5))

    def test_exponential_service(self):
        # M/M/1: latency = E[S] / (1 - rho).
        mean = 10.0
        moments = ServiceMoments(mean, 2 * mean**2)
        latency = mg1_mean_latency(0.05, moments)  # rho = 0.5
        assert latency == pytest.approx(mean / 0.5)

    def test_wait_explodes_near_saturation(self):
        moments = ServiceMoments(1.0, 2.0)
        assert mg1_mean_wait(0.95, moments) > 10 * mg1_mean_wait(0.5, moments)

    def test_scv(self):
        assert ServiceMoments(10.0, 100.0).scv == pytest.approx(0.0)
        assert ServiceMoments(10.0, 200.0).scv == pytest.approx(1.0)


class TestSimulatorAgreesWithTheory:
    @pytest.mark.parametrize("rho", [0.2, 0.5, 0.7])
    def test_md1_mean_latency(self, rho):
        """Deterministic service: the simulator must match M/D/1."""
        rng = np.random.default_rng(42)
        n = 20_000
        service = 100.0
        rate = rho / service
        arrivals = np.cumsum(rng.exponential(1.0 / rate, size=n))
        done = simulate_fixed_service(arrivals, np.full(n, service))
        measured = float(np.mean([d.latency for d in done]))
        predicted = mg1_mean_latency(rate, ServiceMoments(service, service**2))
        assert measured == pytest.approx(predicted, rel=0.08)

    def test_mg1_with_lognormal_service(self):
        rng = np.random.default_rng(7)
        n = 30_000
        services = rng.lognormal(4.0, 0.5, size=n)
        moments = moments_from_samples(services)
        rate = 0.5 / moments.mean
        arrivals = np.cumsum(rng.exponential(1.0 / rate, size=n))
        done = simulate_fixed_service(arrivals, services)
        measured = float(np.mean([d.latency for d in done]))
        predicted = mg1_mean_latency(rate, moments)
        assert measured == pytest.approx(predicted, rel=0.10)

    def test_engine_baseline_matches_theory(self):
        """The full engine, under a fixed warm partition, is an M/G/1
        queue whose mean latency P-K must predict."""
        from repro.sim.mix_runner import MixRunner
        from repro.workloads.latency_critical import make_lc_workload
        from repro.cpu import OutOfOrderCore

        workload = make_lc_workload("masstree")
        runner = MixRunner(requests=300, seed=3)
        baseline = runner.baseline(workload, 0.5)
        measured_mean = float(np.mean(baseline.latencies))

        core = OutOfOrderCore(200.0)
        p = float(workload.miss_curve(workload.target_lines))
        cpi = core.cpi(workload.profile, p)
        rng = np.random.default_rng(0)
        services = np.asarray(
            [workload.work.sample(rng) * cpi for _ in range(50_000)]
        )
        moments = moments_from_samples(services)
        rate = 0.5 / workload.mean_service_cycles(core)
        predicted = mg1_mean_latency(rate, moments)
        # Coalescing adds a small constant delay; allow a wider band.
        assert measured_mean == pytest.approx(predicted, rel=0.25)
