"""Tests for repro.analysis.stats."""

import numpy as np
import pytest

from repro.analysis.stats import (
    ConfidenceInterval,
    bootstrap_confidence_interval,
    mean_confidence_interval,
    relative_half_width,
    tail_mean_confidence_interval,
)


class TestConfidenceInterval:
    def test_validation(self):
        with pytest.raises(ValueError):
            ConfidenceInterval(5.0, 6.0, 7.0)
        with pytest.raises(ValueError):
            ConfidenceInterval(5.0, 4.0, 6.0, confidence=1.5)

    def test_contains_and_width(self):
        ci = ConfidenceInterval(5.0, 4.0, 6.0)
        assert ci.contains(4.5)
        assert not ci.contains(7.0)
        assert ci.half_width == 1.0


class TestMeanCI:
    def test_covers_true_mean(self):
        rng = np.random.default_rng(0)
        hits = 0
        for trial in range(50):
            samples = rng.normal(10.0, 2.0, size=100)
            ci = mean_confidence_interval(samples)
            hits += ci.contains(10.0)
        assert hits >= 42  # ~95% coverage, loose bound

    def test_narrows_with_samples(self):
        rng = np.random.default_rng(1)
        small = mean_confidence_interval(rng.normal(0, 1, 50))
        large = mean_confidence_interval(rng.normal(0, 1, 5000))
        assert large.half_width < small.half_width

    def test_needs_two_samples(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([1.0])


class TestBootstrap:
    def test_tail_ci_brackets_estimate(self):
        rng = np.random.default_rng(2)
        latencies = rng.lognormal(0, 1, size=400)
        ci = tail_mean_confidence_interval(latencies, resamples=200)
        assert ci.low <= ci.estimate <= ci.high
        assert ci.high > ci.low

    def test_deterministic_by_seed(self):
        samples = list(range(100))
        a = bootstrap_confidence_interval(samples, np.mean, resamples=100, seed=5)
        b = bootstrap_confidence_interval(samples, np.mean, resamples=100, seed=5)
        assert (a.low, a.high) == (b.low, b.high)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_confidence_interval([1.0], np.mean)
        with pytest.raises(ValueError):
            bootstrap_confidence_interval([1.0, 2.0], np.mean, resamples=1)

    def test_relative_half_width(self):
        ci = ConfidenceInterval(10.0, 9.0, 11.0)
        assert relative_half_width(ci) == pytest.approx(0.1)
        with pytest.raises(ValueError):
            relative_half_width(ConfidenceInterval(0.0, 0.0, 0.0))
