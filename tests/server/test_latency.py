"""Tests for repro.server.latency (the paper's tail metric)."""

import numpy as np
import pytest

from repro.server.latency import (
    percentile_latency,
    summarize_latencies,
    tail_degradation,
    tail_mean,
)


class TestTailMean:
    def test_uniform_example(self):
        latencies = list(range(1, 101))  # 1..100
        # p95 = 95.05; tail mean = mean of 96..100
        assert tail_mean(latencies) == pytest.approx(98.0)

    def test_includes_whole_tail(self):
        """Unlike a pure percentile, degrading the extreme tail moves
        the metric — the anti-gaming property the paper wants."""
        base = list(range(1, 101))
        gamed = base[:-1] + [10_000.0]
        assert tail_mean(gamed) > tail_mean(base)
        # The p95 percentile barely moves.
        assert percentile_latency(gamed) == pytest.approx(
            percentile_latency(base), rel=0.02
        )

    def test_constant_distribution(self):
        assert tail_mean([5.0] * 50) == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            tail_mean([])
        with pytest.raises(ValueError):
            tail_mean([-1.0, 2.0])
        with pytest.raises(ValueError):
            percentile_latency([1.0], pct=0)

    def test_other_percentiles(self):
        latencies = list(range(1, 101))
        assert tail_mean(latencies, 50.0) > tail_mean(latencies, 5.0)


class TestDegradation:
    def test_identity(self):
        lat = [1.0, 2.0, 3.0, 10.0]
        assert tail_degradation(lat, lat) == pytest.approx(1.0)

    def test_doubling(self):
        base = [1.0, 2.0, 3.0, 10.0] * 10
        slow = [2 * x for x in base]
        assert tail_degradation(slow, base) == pytest.approx(2.0)


class TestSummary:
    def test_fields(self):
        summary = summarize_latencies(list(range(1, 101)))
        assert summary.count == 100
        assert summary.mean == pytest.approx(50.5)
        assert summary.p50 == pytest.approx(50.5)
        assert summary.max == 100
        assert summary.tail95 == pytest.approx(98.0)

    def test_scaled(self):
        summary = summarize_latencies([1.0, 2.0, 3.0]).scaled(1000.0)
        assert summary.mean == pytest.approx(2000.0)
        assert summary.count == 3
