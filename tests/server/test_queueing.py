"""Tests for repro.server.queueing and request records."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.server.queueing import (
    build_requests,
    run_fifo_server,
    simulate_fixed_service,
)
from repro.server.request import CompletedRequest, Request


class TestRequestRecords:
    def test_request_validation(self):
        with pytest.raises(ValueError):
            Request(0, arrival=-1.0, work=1.0)
        with pytest.raises(ValueError):
            Request(0, arrival=0.0, work=0.0)

    def test_completed_request_metrics(self):
        done = CompletedRequest(0, arrival=10.0, start=15.0, completion=25.0)
        assert done.latency == 15.0
        assert done.queueing_delay == 5.0
        assert done.service_time == 10.0

    def test_completed_request_ordering_enforced(self):
        with pytest.raises(ValueError):
            CompletedRequest(0, arrival=10.0, start=5.0, completion=25.0)


class TestFifoServer:
    def test_no_contention(self):
        done = simulate_fixed_service([0.0, 100.0], [10.0, 10.0])
        assert done[0].completion == 10.0
        assert done[1].start == 100.0
        assert done[1].latency == 10.0

    def test_queueing_delay(self):
        done = simulate_fixed_service([0.0, 1.0, 2.0], [10.0, 10.0, 10.0])
        assert done[1].start == 10.0
        assert done[1].latency == pytest.approx(19.0)
        assert done[2].start == 20.0
        assert done[2].latency == pytest.approx(28.0)

    def test_fifo_order_preserved(self):
        done = simulate_fixed_service([0.0, 0.5], [100.0, 1.0])
        # Second request waits for the long first one.
        assert done[1].start == pytest.approx(100.0)

    def test_state_dependent_service(self):
        requests = build_requests([0.0, 0.0], [1.0, 1.0])
        # Service twice as slow when starting later (degenerate model).
        done = run_fifo_server(
            requests, lambda req, start: 10.0 if start == 0.0 else 20.0
        )
        assert done[0].service_time == 10.0
        assert done[1].service_time == 20.0

    def test_rejects_nonpositive_service(self):
        requests = build_requests([0.0], [1.0])
        with pytest.raises(ValueError):
            run_fifo_server(requests, lambda req, start: 0.0)

    def test_build_requests_validation(self):
        with pytest.raises(ValueError):
            build_requests([0.0, 1.0], [1.0])
        with pytest.raises(ValueError):
            build_requests([1.0, 0.0], [1.0, 1.0])

    def test_mismatched_fixed_service(self):
        with pytest.raises(ValueError):
            simulate_fixed_service([0.0], [1.0, 2.0])


@settings(max_examples=50, deadline=None)
@given(
    gaps=st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=40),
    services=st.lists(
        st.floats(min_value=0.1, max_value=100), min_size=1, max_size=40
    ),
)
def test_property_fifo_conservation(gaps, services):
    """FIFO invariants: starts ordered, no overlap, latency >= service."""
    n = min(len(gaps), len(services))
    arrivals = np.cumsum(gaps[:n])
    done = simulate_fixed_service(arrivals, services[:n])
    for i, d in enumerate(done):
        assert d.latency >= d.service_time - 1e-9
        if i:
            assert d.start >= done[i - 1].completion - 1e-9
    # Work conservation: total busy time equals sum of services.
    busy = sum(d.service_time for d in done)
    assert busy == pytest.approx(sum(services[:n]))
