"""Additional tests for server request records and latency summaries."""

import numpy as np
import pytest

from repro.server.latency import LatencySummary, summarize_latencies, tail_mean
from repro.server.request import CompletedRequest
from repro.sim.results import LCInstanceResult


class TestCompletedRequestEdges:
    def test_zero_queueing(self):
        done = CompletedRequest(0, arrival=5.0, start=5.0, completion=6.0)
        assert done.queueing_delay == 0.0
        assert done.latency == done.service_time == 1.0

    def test_frozen(self):
        done = CompletedRequest(0, arrival=0.0, start=0.0, completion=1.0)
        with pytest.raises(Exception):
            done.latency = 5.0  # frozen dataclass property


class TestTailMetricProperties:
    def test_tail_mean_at_least_percentile(self):
        rng = np.random.default_rng(0)
        latencies = rng.lognormal(0, 1, size=500)
        p95 = float(np.percentile(latencies, 95))
        assert tail_mean(latencies) >= p95

    def test_tail_mean_monotone_under_scaling(self):
        latencies = [1.0, 2.0, 5.0, 9.0] * 20
        assert tail_mean([2 * x for x in latencies]) == pytest.approx(
            2 * tail_mean(latencies)
        )

    def test_tail_mean_shift_invariance(self):
        latencies = list(np.linspace(1, 10, 100))
        shifted = [x + 7.0 for x in latencies]
        assert tail_mean(shifted) == pytest.approx(tail_mean(latencies) + 7.0)


class TestSummaries:
    def test_summary_consistency(self):
        rng = np.random.default_rng(1)
        latencies = rng.exponential(5.0, size=300)
        summary = summarize_latencies(latencies)
        assert summary.p50 <= summary.p95 <= summary.tail95 <= summary.max
        assert summary.count == 300

    def test_instance_result_tail(self):
        inst = LCInstanceResult("x", latencies=list(range(1, 101)))
        assert inst.tail95() == pytest.approx(98.0)
