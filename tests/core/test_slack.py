"""Tests for repro.core.slack (the miss-slack feedback controller)."""

import pytest

from repro.core.slack import SlackController
from repro.monitor.miss_curve import MissCurve

TARGET_TAIL = 1e6
M = 100.0


def make_controller(slack=0.05, **kwargs):
    return SlackController(slack, TARGET_TAIL, M, **kwargs)


class TestBudget:
    def test_zero_slack_zero_budget(self):
        ctrl = make_controller(slack=0.0)
        assert ctrl.update([1.0, 2.0]) == 0.0
        curve = MissCurve([0, 1000], [0.9, 0.1])
        assert ctrl.active_size(curve, 800.0, 100.0) == 800.0

    def test_initial_budget_proportional_to_slack(self):
        small = make_controller(slack=0.01)
        large = make_controller(slack=0.10)
        assert large.miss_slack > small.miss_slack

    def test_validation(self):
        with pytest.raises(ValueError):
            SlackController(-0.1, TARGET_TAIL, M)
        with pytest.raises(ValueError):
            SlackController(0.05, 0.0, M)
        with pytest.raises(ValueError):
            SlackController(0.05, TARGET_TAIL, 0.0)
        with pytest.raises(ValueError):
            SlackController(0.05, TARGET_TAIL, M, gain=0.0)


class TestFeedback:
    def test_violation_shrinks_budget(self):
        ctrl = make_controller()
        before = ctrl.miss_slack
        # Tail measured at 2x the target: way over the allowance.
        ctrl.update([2 * TARGET_TAIL] * 20)
        assert ctrl.miss_slack < before

    def test_headroom_grows_budget(self):
        ctrl = make_controller()
        before = ctrl.miss_slack
        ctrl.update([0.2 * TARGET_TAIL] * 20)
        assert ctrl.miss_slack > before

    def test_budget_never_negative(self):
        ctrl = make_controller()
        for _ in range(50):
            ctrl.update([10 * TARGET_TAIL] * 20)
        assert ctrl.miss_slack == 0.0

    def test_budget_capped(self):
        ctrl = make_controller()
        for _ in range(100):
            ctrl.update([0.01 * TARGET_TAIL] * 20)
        assert ctrl.miss_slack <= ctrl._max_miss_slack + 1e-9

    def test_violations_shrink_faster_than_headroom_grows(self):
        """Asymmetric gains: tails are asymmetric risks."""
        up = make_controller()
        down = make_controller()
        start = up.miss_slack
        up.update([TARGET_TAIL * 0.95] * 20)  # 10% headroom vs allowed
        down.update([TARGET_TAIL * 1.15] * 20)  # 10% violation
        assert abs(down.miss_slack - start) > abs(up.miss_slack - start)

    def test_load_hint_derates_ceiling(self):
        light = make_controller()
        heavy = make_controller()
        light.update([0.1 * TARGET_TAIL] * 20, load_hint=0.1)
        heavy.update([0.1 * TARGET_TAIL] * 20, load_hint=0.9)
        assert heavy._max_miss_slack < light._max_miss_slack

    def test_empty_update_keeps_budget(self):
        ctrl = make_controller()
        before = ctrl.miss_slack
        assert ctrl.update([]) == before


class TestActiveSize:
    def test_shrinks_where_curve_is_flat(self):
        """The moses case: flat curve at small sizes -> deep shrink."""
        ctrl = make_controller(slack=0.05)
        flat = MissCurve([0, 1000], [0.32, 0.30])
        size = ctrl.active_size(flat, 800.0, accesses_per_request=100.0)
        assert size < 800.0

    def test_no_shrink_on_steep_curve(self):
        ctrl = make_controller(slack=0.01)
        steep = MissCurve([0, 800, 1000], [0.9, 0.1, 0.05])
        # With few misses allowed, shrinking is unaffordable.
        size = ctrl.active_size(steep, 800.0, accesses_per_request=1e6)
        assert size == 800.0

    def test_floor_prevents_vanishing(self):
        ctrl = make_controller(slack=0.10)
        flat = MissCurve.constant(0.3, 1000)
        size = ctrl.active_size(flat, 800.0, accesses_per_request=1.0)
        assert size >= 800.0 / 16.0

    def test_zero_accesses_keeps_target(self):
        ctrl = make_controller()
        curve = MissCurve([0, 1000], [0.9, 0.1])
        assert ctrl.active_size(curve, 800.0, 0.0) == 800.0

    def test_validation(self):
        ctrl = make_controller()
        curve = MissCurve([0, 1000], [0.9, 0.1])
        with pytest.raises(ValueError):
            ctrl.active_size(curve, 0.0, 100.0)

    def test_watermark_factor(self):
        assert make_controller(slack=0.05).watermark_factor == pytest.approx(1.05)
