"""Tests for repro.core.ubik (policy-level behaviour)."""

import numpy as np
import pytest

from repro.core.ubik import UbikPolicy
from repro.monitor.miss_curve import MissCurve
from repro.policies.base import AppView, PolicyContext

LLC = 196_608  # 12 MB
TARGET = 32_768  # 2 MB


def lc_view(index, idle_fraction=0.8, curve=None):
    curve = curve or MissCurve(
        [0, TARGET // 2, TARGET, 2 * TARGET, LLC], [0.8, 0.4, 0.25, 0.12, 0.05]
    )
    return AppView(
        index=index,
        name=f"lc{index}",
        kind="lc",
        curve=curve,
        apki=16.0,
        hit_interval=40.0,
        miss_penalty=100.0,
        access_rate=0.002,
        target_lines=float(TARGET),
        deadline_cycles=3e6,
        target_tail_cycles=3e6,
        idle_fraction=idle_fraction,
        activation_rate=1e-7,
        accesses_per_request=8000.0,
        tail_accesses_per_request=12_000.0,
    )


def batch_view(index, flavor="friendly"):
    if flavor == "friendly":
        curve = MissCurve([0, LLC], [0.8, 0.1])
    else:
        curve = MissCurve.constant(0.9, LLC)
    return AppView(
        index=index,
        name=f"b{index}",
        kind="batch",
        curve=curve,
        apki=10.0,
        hit_interval=70.0,
        miss_penalty=120.0,
        access_rate=0.01,
    )


def make_ctx(apps, active=None, boosted=None, targets=None):
    lc = [a.index for a in apps if a.is_lc]
    return PolicyContext(
        llc_lines=LLC,
        apps=apps,
        current_targets=targets or {a.index: 0.0 for a in apps},
        now=0.0,
        avg_batch_lines=LLC - 2 * TARGET,
        lc_active=active or {i: False for i in lc},
        rng=np.random.default_rng(0),
        lc_boosted=boosted or {i: False for i in lc},
    )


@pytest.fixture
def apps():
    return [lc_view(0), lc_view(1), batch_view(2), batch_view(3, "stream")]


class TestLifecycle:
    def test_initialize_covers_all_apps(self, apps):
        policy = UbikPolicy()
        decision = policy.initialize(make_ctx(apps))
        assert set(decision.targets) == {0, 1, 2, 3}
        assert sum(decision.targets.values()) <= LLC + 1e-6

    def test_idle_apps_downsized_below_target(self, apps):
        policy = UbikPolicy()
        decision = policy.initialize(make_ctx(apps))
        sizing = policy.sizing_for(0)
        assert sizing.idle_lines < TARGET
        assert decision.targets[0] == sizing.idle_lines

    def test_activation_boosts_and_arms_plan(self, apps):
        policy = UbikPolicy()
        ctx = make_ctx(apps)
        init = policy.initialize(ctx)
        ctx = make_ctx(
            apps, active={0: True, 1: False}, targets=dict(init.targets)
        )
        decision = policy.on_lc_active(ctx, 0)
        sizing = policy.sizing_for(0)
        assert decision.targets[0] == sizing.boost_lines
        assert sizing.boost_lines > sizing.active_lines
        assert 0 in decision.boost_plans
        plan = decision.boost_plans[0]
        assert plan.active_lines == sizing.active_lines

    def test_boost_capped_for_mutual_isolation(self, apps):
        """sboost <= llc / num_lc: boosted LC apps can never collide."""
        policy = UbikPolicy()
        policy.initialize(make_ctx(apps))
        for index in (0, 1):
            assert policy.sizing_for(index).boost_lines <= LLC / 2

    def test_deboost_returns_to_active(self, apps):
        policy = UbikPolicy()
        ctx = make_ctx(apps)
        init = policy.initialize(ctx)
        ctx = make_ctx(apps, active={0: True, 1: False}, targets=dict(init.targets))
        boost_decision = policy.on_lc_active(ctx, 0)
        ctx2 = make_ctx(
            apps,
            active={0: True, 1: False},
            boosted={0: True, 1: False},
            targets=boost_decision.merged_over(init.targets),
        )
        deboost = policy.on_deboost(ctx2, 0)
        assert deboost.targets[0] == policy.sizing_for(0).active_lines

    def test_idle_gives_space_to_batch(self, apps):
        policy = UbikPolicy()
        ctx = make_ctx(apps)
        init = policy.initialize(ctx)
        active_targets = dict(init.targets)
        active_targets[0] = TARGET
        ctx = make_ctx(apps, active={0: True, 1: False}, targets=active_targets)
        idle_decision = policy.on_lc_idle(ctx, 0)
        batch_after = idle_decision.targets[2] + idle_decision.targets[3]
        batch_before = active_targets[2] + active_targets[3]
        assert idle_decision.targets[0] < TARGET
        assert batch_after >= batch_before

    def test_interval_leaves_boosted_apps_alone(self, apps):
        policy = UbikPolicy()
        ctx = make_ctx(apps)
        init = policy.initialize(ctx)
        boosted_targets = dict(init.targets)
        boosted_targets[0] = 50_000.0  # mid-boost
        ctx = make_ctx(
            apps,
            active={0: True, 1: False},
            boosted={0: True, 1: False},
            targets=boosted_targets,
        )
        decision = policy.on_interval(ctx)
        assert decision.targets[0] == 50_000.0


class TestSlackVariant:
    def test_name_reflects_slack(self):
        assert UbikPolicy().name == "Ubik"
        assert UbikPolicy(slack=0.05).name == "Ubik-5%"

    def test_slack_shrinks_active_size(self, apps):
        """With a flat-ish curve, slack lowers s_active below target."""
        flat = MissCurve([0, TARGET // 8, LLC], [0.9, 0.33, 0.30])
        flat_apps = [lc_view(0, curve=flat), lc_view(1), batch_view(2), batch_view(3)]
        strict = UbikPolicy(slack=0.0)
        slacked = UbikPolicy(slack=0.10)
        strict.initialize(make_ctx(flat_apps))
        slacked.initialize(make_ctx(flat_apps))
        assert (
            slacked.sizing_for(0).active_lines
            < strict.sizing_for(0).active_lines
        )

    def test_watermark_forces_strict_plan(self, apps):
        policy = UbikPolicy(slack=0.05)
        ctx = make_ctx(apps)
        init = policy.initialize(ctx)
        ctx2 = make_ctx(apps, active={0: True, 1: False}, targets=dict(init.targets))
        decision = policy.on_watermark(ctx2, 0)
        strict = policy._strict_sizing[0]
        assert decision.targets[0] == strict.boost_lines
        if 0 in decision.boost_plans:
            assert decision.boost_plans[0].watermark_factor is None

    def test_validation(self):
        with pytest.raises(ValueError):
            UbikPolicy(slack=-0.1)
        with pytest.raises(ValueError):
            UbikPolicy(buckets=0)
