"""Tests for repro.core.deboost (the accurate de-boosting circuit)."""

import pytest

from repro.core.deboost import DeBoostEvent, DeBoostTracker
from repro.policies.base import BoostPlan


def make_tracker(watermark=None, guard=0.02, active_ratio=0.3):
    plan = BoostPlan(
        boost_lines=1000.0,
        active_lines=600.0,
        guard_fraction=guard,
        watermark_factor=watermark,
    )
    return DeBoostTracker(plan, active_miss_ratio=active_ratio)


class TestDeBoost:
    def test_no_fire_while_behind(self):
        tracker = make_tracker()
        # Cold start: actual misses far above the projection.
        event = tracker.observe(accesses=100, misses=80, resident_lines=500, now=1.0)
        assert event is None
        assert tracker.deficit > 0

    def test_fires_when_repaid(self):
        tracker = make_tracker(active_ratio=0.5)
        tracker.observe(accesses=100, misses=80, resident_lines=500, now=1.0)
        # Now at boost size the app misses much less than it would at
        # s_active; the projection catches up.
        event = None
        now = 2.0
        while event is None and now < 100:
            event = tracker.observe(
                accesses=100, misses=5, resident_lines=1000, now=now
            )
            now += 1
        assert event is not None
        assert event.kind == "deboost"
        assert tracker.fired

    def test_guard_delays_firing(self):
        eager = make_tracker(guard=0.0, active_ratio=0.5)
        guarded = make_tracker(guard=0.3, active_ratio=0.5)
        for tracker in (eager, guarded):
            tracker.observe(accesses=100, misses=60, resident_lines=900, now=0.0)
        fire_time = {}
        for name, tracker in (("eager", eager), ("guarded", guarded)):
            now = 1.0
            event = None
            while event is None and now < 5000:
                # Small steps so the two guards fire at distinct times.
                event = tracker.observe(2, 0.2, 1000, now)
                now += 1
            fire_time[name] = now
        assert fire_time["guarded"] > fire_time["eager"]

    def test_fired_tracker_stays_quiet(self):
        tracker = make_tracker(active_ratio=0.9)
        event = tracker.observe(accesses=1000, misses=0, resident_lines=1000, now=0.0)
        assert event is not None
        assert tracker.observe(1000, 0, 1000, 1.0) is None


class TestWatermark:
    def test_fires_after_fill_when_suffering(self):
        tracker = make_tracker(watermark=1.05, active_ratio=0.1)
        # Filled to boost, but still missing far beyond projection.
        event = None
        now = 0.0
        while event is None and now < 50:
            event = tracker.observe(100, 90, 1000, now)
            now += 1
        assert event is not None
        assert event.kind == "watermark"

    def test_no_watermark_before_fill(self):
        tracker = make_tracker(watermark=1.05, active_ratio=0.1)
        for now in range(50):
            event = tracker.observe(100, 90, resident_lines=500, now=float(now))
            assert event is None  # still filling: misses are expected

    def test_no_watermark_without_factor(self):
        tracker = make_tracker(watermark=None, active_ratio=0.01)
        for now in range(50):
            event = tracker.observe(100, 90, 1000, float(now))
            assert event is None


class TestAccumulate:
    def test_accumulate_never_fires(self):
        tracker = make_tracker(active_ratio=0.9)
        tracker.accumulate(accesses=1000, misses=0, resident_lines=1000)
        assert not tracker.fired
        # But the very next observe sees the crossing immediately.
        event = tracker.observe(1, 0, 1000, now=5.0)
        assert event is not None and event.kind == "deboost"

    def test_validation(self):
        tracker = make_tracker()
        with pytest.raises(ValueError):
            tracker.observe(-1, 0, 0, 0.0)
        with pytest.raises(ValueError):
            tracker.accumulate(-1, 0, 0)
        with pytest.raises(ValueError):
            DeBoostTracker(
                BoostPlan(boost_lines=10, active_lines=5), active_miss_ratio=2.0
            )
        with pytest.raises(ValueError):
            DeBoostEvent(kind="explode", at_cycle=0.0)
