"""Tests for repro.core.boost.evaluate_options (the Figure 7 table)."""

import math

import pytest

from repro.core.boost import evaluate_options
from repro.monitor.miss_curve import MissCurve
from repro.units import mb_to_lines


def fig7_options(num_options=4, deadline=2.5e7):
    curve = MissCurve(
        [0, mb_to_lines(0.5), mb_to_lines(1), mb_to_lines(2), mb_to_lines(4)],
        [0.8, 0.45, 0.25, 0.12, 0.04],
    )
    return evaluate_options(
        curve=curve,
        c=20.0,
        M=100.0,
        active_lines=mb_to_lines(2),
        deadline_cycles=deadline,
        boost_max_lines=mb_to_lines(4),
        batch_delta_hit_rate=lambda d: d * 1e-6,
        idle_fraction=0.85,
        activation_rate=2e-8,
        num_options=num_options,
    )


class TestOptionTable:
    def test_option_zero_is_keep(self):
        options = fig7_options()
        first = options[0]
        assert first.idle_lines == first.active_lines == first.boost_lines
        assert first.feasible
        assert first.net_gain == 0.0

    def test_idle_sizes_strictly_decreasing(self):
        options = fig7_options()
        idles = [o.idle_lines for o in options]
        assert all(b < a for a, b in zip(idles, idles[1:]))

    def test_search_stops_at_first_infeasible(self):
        options = fig7_options()
        feasible_flags = [o.feasible for o in options]
        if False in feasible_flags:
            # Everything after the first False was never evaluated.
            assert feasible_flags.index(False) == len(options) - 1

    def test_infeasible_row_marked(self):
        options = fig7_options()
        assert not options[-1].feasible
        assert math.isnan(options[-1].boost_lines)
        assert options[-1].net_gain == float("-inf")

    def test_lost_cycles_grow_with_downsizing(self):
        options = [o for o in fig7_options() if o.feasible]
        losts = [o.lost_cycles for o in options]
        assert all(b >= a - 1e-9 for a, b in zip(losts, losts[1:]))

    def test_benefit_grows_with_downsizing(self):
        options = [o for o in fig7_options() if o.feasible][1:]
        benefits = [o.benefit for o in options]
        assert all(b >= a for a, b in zip(benefits, benefits[1:]))

    def test_tiny_deadline_only_keep_option(self):
        options = fig7_options(deadline=100.0)
        assert options[0].feasible
        assert len([o for o in options if o.feasible]) == 1

    def test_choose_sizes_consistent_with_table(self):
        from repro.core.boost import choose_sizes

        options = fig7_options()
        best_from_table = max(
            (o for o in options if o.feasible), key=lambda o: o.net_gain
        )
        curve = MissCurve(
            [0, mb_to_lines(0.5), mb_to_lines(1), mb_to_lines(2), mb_to_lines(4)],
            [0.8, 0.45, 0.25, 0.12, 0.04],
        )
        chosen = choose_sizes(
            curve=curve,
            c=20.0,
            M=100.0,
            active_lines=mb_to_lines(2),
            deadline_cycles=2.5e7,
            boost_max_lines=mb_to_lines(4),
            batch_delta_hit_rate=lambda d: d * 1e-6,
            idle_fraction=0.85,
            activation_rate=2e-8,
            num_options=4,
        )
        assert chosen.idle_lines == best_from_table.idle_lines
        assert chosen.boost_lines == best_from_table.boost_lines
