"""Tests for repro.core.boost (idle/boost sizing, Figure 7)."""

import pytest

from repro.core.boost import choose_sizes
from repro.monitor.miss_curve import MissCurve


def sensitive_curve(size=65536):
    """A cache-intensive app with capacity sensitivity that persists
    beyond the 32768-line active size, so boosting has headroom —
    the regime the paper says Ubik works best in (Section 5.1)."""
    return MissCurve(
        [0, size // 4, size // 2, size * 3 // 4, size],
        [0.8, 0.45, 0.25, 0.12, 0.08],
    )


def flat_batch_gain(delta_lines):
    """Batch hit rate linear in space: 1e-6 hits/cycle per line."""
    return delta_lines * 1e-6


def run_choice(
    curve=None,
    idle_fraction=0.8,
    activation_rate=1e-7,
    deadline=2e7,
    boost_max=65536.0,
    batch_fn=flat_batch_gain,
):
    return choose_sizes(
        curve=curve or sensitive_curve(),
        c=20.0,  # cache-intensive: ~2 cycles/instr at 40 APKI
        M=100.0,
        active_lines=32768.0,
        deadline_cycles=deadline,
        boost_max_lines=boost_max,
        batch_delta_hit_rate=batch_fn,
        idle_fraction=idle_fraction,
        activation_rate=activation_rate,
    )


class TestChoice:
    def test_downsizes_when_mostly_idle(self):
        option = run_choice(idle_fraction=0.9, activation_rate=1e-8)
        assert option.downsizes
        assert option.idle_lines < option.active_lines
        assert option.boost_lines >= option.active_lines

    def test_keeps_allocation_when_never_idle(self):
        option = run_choice(idle_fraction=0.0, activation_rate=1e-6)
        assert not option.downsizes
        assert option.net_gain == 0.0

    def test_boost_never_exceeds_cap(self):
        option = run_choice(boost_max=40_000.0)
        assert option.boost_lines <= 40_000.0

    def test_infeasible_when_deadline_tiny(self):
        """With a microscopic deadline, no boost can repay in time."""
        option = run_choice(deadline=10.0)
        assert not option.downsizes

    def test_flat_curve_costs_nothing_to_downsize(self):
        """No miss-rate difference -> no lost cycles -> idle size can
        drop without boosting."""
        curve = MissCurve.constant(0.3, 65536)
        option = run_choice(curve=curve)
        assert option.downsizes
        assert option.boost_lines == option.active_lines
        assert option.lost_cycles == 0.0

    def test_gain_accounting_sane(self):
        option = run_choice(idle_fraction=0.9, activation_rate=1e-8)
        assert option.net_gain >= 0.0
        assert option.transient_cycles >= 0.0

    def test_aggressive_options_terminate_search(self):
        """Search stops at the first infeasible option (paper Fig 7)."""
        # Deadline that allows mild but not deep downsizing.
        mild = run_choice(deadline=2e5)
        deep = run_choice(deadline=5e7)
        assert deep.idle_lines <= mild.idle_lines

    def test_validation(self):
        with pytest.raises(ValueError):
            run_choice(deadline=0.0)
        with pytest.raises(ValueError):
            choose_sizes(
                curve=sensitive_curve(),
                c=1.0,
                M=1.0,
                active_lines=0.0,
                deadline_cycles=1e6,
                boost_max_lines=100.0,
                batch_delta_hit_rate=flat_batch_gain,
                idle_fraction=0.5,
                activation_rate=1e-7,
            )
        with pytest.raises(ValueError):
            run_choice(idle_fraction=1.5)

    def test_cost_benefit_prefers_cheaper_options(self):
        """When boosting is very expensive for batch apps, Ubik stays
        conservative."""

        def expensive_boost(delta_lines):
            # Taking space from batch is catastrophic; giving helps little.
            return delta_lines * (1e-4 if delta_lines < 0 else 1e-9)

        option = run_choice(batch_fn=expensive_boost, activation_rate=1e-5)
        conservative = run_choice(activation_rate=1e-5)
        assert option.idle_lines >= conservative.idle_lines
