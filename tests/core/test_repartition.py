"""Tests for repro.core.repartition (Figure 8's table)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.repartition import RepartitionTable
from repro.monitor.miss_curve import MissCurve

LLC = 1000.0


def make_table(avg=600.0, buckets=20):
    curves = [
        MissCurve([0, LLC], [0.9, 0.1]),  # friendly
        MissCurve.constant(0.9, LLC),  # streaming
        MissCurve([0, 200, LLC], [0.8, 0.2, 0.15]),  # small working set
    ]
    weights = [1.0, 1.0, 1.0]
    return RepartitionTable(curves, weights, LLC, avg, buckets=buckets)


class TestConstruction:
    def test_validation(self):
        curve = MissCurve([0, LLC], [0.5, 0.1])
        with pytest.raises(ValueError):
            RepartitionTable([curve], [1.0, 2.0], LLC, 500.0)
        with pytest.raises(ValueError):
            RepartitionTable([curve], [1.0], 0.0, 0.0)
        with pytest.raises(ValueError):
            RepartitionTable([curve], [1.0], LLC, 2 * LLC)
        with pytest.raises(ValueError):
            RepartitionTable([curve], [1.0], LLC, 500.0, buckets=0)

    def test_empty_batch_side(self):
        table = RepartitionTable([], [], LLC, 500.0)
        assert table.allocations_at(500.0) == []

    def test_rows_sum_to_level(self):
        table = make_table()
        for level in range(table.buckets + 1):
            assert table.row(level).sum() == level

    def test_rows_monotone_per_app(self):
        """Walking up never takes space away from any app: the greedy
        extension is incremental by construction."""
        table = make_table()
        prev = table.row(0)
        for level in range(1, table.buckets + 1):
            row = table.row(level)
            assert np.all(row >= prev)
            prev = row


class TestLookups:
    def test_level_for_clamps(self):
        table = make_table()
        assert table.level_for(-10.0) == 0
        assert table.level_for(LLC * 2) == table.buckets

    def test_allocations_in_lines(self):
        table = make_table()
        allocs = table.allocations_at(600.0)
        assert sum(allocs) <= 600.0 + 1e-9
        assert len(allocs) == 3

    def test_streaming_app_starved_first(self):
        """Shrinking batch space takes from the lowest-marginal-utility
        app: the streaming app gives up its buckets before the
        friendly app loses its knee."""
        table = make_table()
        small = table.allocations_at(200.0)
        assert small[1] <= small[0]

    def test_row_validation(self):
        table = make_table()
        with pytest.raises(ValueError):
            table.row(-1)
        with pytest.raises(ValueError):
            table.row(table.buckets + 1)

    def test_walk_is_cheap_diff(self):
        """Fig 8's use: moving between levels is a small set of app
        deltas, each level differing by exactly one bucket."""
        table = make_table()
        for level in range(1, table.buckets + 1):
            diff = table.row(level) - table.row(level - 1)
            assert diff.sum() == 1
            assert np.count_nonzero(diff) == 1


@settings(max_examples=30, deadline=None)
@given(
    avg_frac=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=500),
)
def test_property_table_consistent(avg_frac, seed):
    rng = np.random.default_rng(seed)
    curves = []
    for _ in range(3):
        ratios = np.sort(rng.uniform(0, 1, size=4))[::-1]
        curves.append(MissCurve(np.linspace(0, LLC, 4), ratios))
    weights = rng.uniform(0.1, 5.0, size=3)
    table = RepartitionTable(curves, weights, LLC, avg_frac * LLC, buckets=16)
    for level in range(17):
        row = table.row(level)
        assert row.sum() == level
        assert np.all(row >= 0)
