"""Tests for repro.core.transient (Section 5.1's bounds)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.monitor.miss_curve import MissCurve
from repro.core.transient import (
    gain_rate_per_cycle,
    lost_cycles_bound,
    lost_cycles_exact,
    transient_length_bound,
    transient_length_exact,
)


def linear_curve(m0=0.2, m1=0.1, size=16384):
    return MissCurve([0, size], [m0, m1])


class TestPaperWorkedExample:
    """Section 5.1: c=123, M=100, s1=1MB, s2=2MB (16384 lines apart),
    p(s1)=0.2, p(s2)=0.1 -> transient <= 21.8e6 cycles, L <= 819k."""

    def setup_method(self):
        # Curve hitting p=0.2 at s1 and p=0.1 at s2, 16384 lines apart.
        self.curve = MissCurve([0, 16384, 32768], [0.2, 0.2, 0.1])
        self.s1, self.s2 = 16384.0, 32768.0
        self.c, self.M = 123.0, 100.0

    def test_transient_bound_matches_paper(self):
        bound = transient_length_bound(self.curve, self.s1, self.s2, self.c, self.M)
        assert bound == pytest.approx(16384 * (123 / 0.1 + 100), rel=1e-6)
        assert bound == pytest.approx(21.8e6, rel=0.01)

    def test_lost_cycles_bound_matches_paper(self):
        bound = lost_cycles_bound(self.curve, self.s1, self.s2, self.M)
        assert bound == pytest.approx(100 * 16384 * 0.5, rel=1e-6)
        assert bound == pytest.approx(819e3, rel=0.01)


class TestBoundsDominateExact:
    def test_transient_bound_above_exact(self):
        curve = linear_curve()
        exact = transient_length_exact(curve, 1000, 15000, 123.0, 100.0)
        bound = transient_length_bound(curve, 1000, 15000, 123.0, 100.0)
        assert bound >= exact

    def test_lost_bound_above_exact(self):
        curve = linear_curve()
        exact = lost_cycles_exact(curve, 1000, 15000, 100.0)
        bound = lost_cycles_bound(curve, 1000, 15000, 100.0)
        assert bound >= exact

    def test_zero_width_transient(self):
        curve = linear_curve()
        assert transient_length_bound(curve, 500, 500, 100, 100) == 0.0
        assert transient_length_exact(curve, 500, 500, 100, 100) == 0.0
        assert lost_cycles_bound(curve, 500, 500, 100) == 0.0
        assert lost_cycles_exact(curve, 500, 500, 100) == 0.0


class TestEdgeCases:
    def test_flat_curve_loses_nothing(self):
        curve = MissCurve.constant(0.3, 10_000)
        assert lost_cycles_bound(curve, 0, 10_000, 100.0) == 0.0
        assert lost_cycles_exact(curve, 0, 10_000, 100.0) == pytest.approx(0.0)

    def test_zero_miss_ratio_never_fills(self):
        curve = MissCurve([0, 100, 10_000], [0.5, 0.0, 0.0])
        assert transient_length_bound(curve, 0, 10_000, 100, 100) == float("inf")

    def test_validation(self):
        curve = linear_curve()
        with pytest.raises(ValueError):
            transient_length_bound(curve, 200, 100, 100, 100)
        with pytest.raises(ValueError):
            transient_length_bound(curve, 0, 1e9, 100, 100)

    def test_exact_transient_with_flat_segment(self):
        curve = MissCurve([0, 100, 200], [0.5, 0.5, 0.25])
        exact = transient_length_exact(curve, 0, 200, 100.0, 50.0)
        # Flat part: 100 lines at Tmiss = 100/0.5 + 50 = 250 cycles.
        flat_part = 100 * 250.0
        assert exact > flat_part


class TestGainRate:
    def test_positive_when_boost_helps(self):
        curve = linear_curve(0.4, 0.1)
        rate = gain_rate_per_cycle(curve, 8192, 16384, 123.0, 100.0)
        assert rate > 0

    def test_zero_on_flat_curve(self):
        curve = MissCurve.constant(0.3, 10_000)
        assert gain_rate_per_cycle(curve, 1000, 5000, 100.0, 100.0) == 0.0

    def test_validation(self):
        curve = linear_curve()
        with pytest.raises(ValueError):
            gain_rate_per_cycle(curve, 5000, 1000, 100.0, 100.0)

    def test_matches_manual_computation(self):
        curve = linear_curve(0.4, 0.2, size=1000)
        # p(500)=0.3, p(1000)=0.2: save 0.1*M per access of c + 0.2*M.
        rate = gain_rate_per_cycle(curve, 500, 1000, 100.0, 100.0)
        assert rate == pytest.approx(0.1 * 100 / (100 + 0.2 * 100))


@settings(max_examples=60, deadline=None)
@given(
    m0=st.floats(min_value=0.05, max_value=1.0),
    m_ratio=st.floats(min_value=0.05, max_value=1.0),
    s1_frac=st.floats(min_value=0.0, max_value=0.9),
    width_frac=st.floats(min_value=0.01, max_value=1.0),
    c=st.floats(min_value=1.0, max_value=500.0),
    M=st.floats(min_value=10.0, max_value=500.0),
)
def test_property_bounds_always_dominate_exact(m0, m_ratio, s1_frac, width_frac, c, M):
    """The controller's safety rests on this: paper bounds >= exact."""
    size = 10_000.0
    curve = MissCurve([0, size], [m0, m0 * m_ratio])
    s1 = s1_frac * size
    s2 = min(size, s1 + width_frac * (size - s1) + 1.0)
    exact_t = transient_length_exact(curve, s1, s2, c, M)
    bound_t = transient_length_bound(curve, s1, s2, c, M)
    assert bound_t >= exact_t - 1e-6 or bound_t == float("inf")
    exact_l = lost_cycles_exact(curve, s1, s2, M)
    bound_l = lost_cycles_bound(curve, s1, s2, M)
    assert bound_l >= exact_l - 1e-6
