"""Tests for repro.units."""

import pytest

from repro.units import (
    cycles_to_ms,
    cycles_to_us,
    kb_to_lines,
    lines_to_mb,
    mb_to_lines,
    ms_to_cycles,
    us_to_cycles,
)


class TestCapacity:
    def test_mb_to_lines(self):
        assert mb_to_lines(2.0) == 32_768
        assert mb_to_lines(12.0) == 196_608

    def test_kb_to_lines(self):
        assert kb_to_lines(32) == 512
        assert kb_to_lines(256) == 4096

    def test_roundtrip(self):
        assert lines_to_mb(mb_to_lines(8.0)) == pytest.approx(8.0)


class TestTime:
    def test_cycles_to_ms_at_default_freq(self):
        assert cycles_to_ms(3.2e9) == pytest.approx(1000.0)
        assert cycles_to_ms(3.2e6) == pytest.approx(1.0)

    def test_cycles_to_us(self):
        assert cycles_to_us(3200.0) == pytest.approx(1.0)

    def test_ms_roundtrip(self):
        assert cycles_to_ms(ms_to_cycles(50.0)) == pytest.approx(50.0)

    def test_us_roundtrip(self):
        assert cycles_to_us(us_to_cycles(50.0)) == pytest.approx(50.0)

    def test_custom_frequency(self):
        assert cycles_to_ms(2e9, freq_hz=2e9) == pytest.approx(1000.0)
