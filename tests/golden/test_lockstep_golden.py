"""Lockstep-on vs -off determinism on the golden-suite grid.

The acceptance bar for the lockstep SoA engine is the one every fast
path in this repo meets: *byte identity*.  Advancing a sweep's replay
groups in lockstep must change nothing about what lands in the store —
not a float, not a byte, not a file.  This runs the pinned 2-policy
sweep (the Ubik and LRU cells of the ``tests/golden`` grid) into fresh
store roots with lockstep enabled (the default) and disabled
(``REPRO_LOCKSTEP=0``, the PR-7 grouped per-cell loop, itself pinned
byte-identical to the scalar oracle by
``test_grid_replay_golden.py``) and compares the resulting stores —
raw trees on the directory backend, canonical exports on sqlite.  A
corpus written either way must also serve a rerun under the *other*
mode as a pure store hit.
"""

import pytest

from repro.runtime import (
    MixRef,
    PolicySpec,
    ResultStore,
    RunSpec,
    Session,
    get_artifacts,
    reset_artifacts,
)

#: The same 2-policy golden sweep the other golden files pin: one
#: shared baseline, two run records, one two-cell replay group.
GOLDEN_SPECS = [
    RunSpec(
        mix=MixRef(lc_name="masstree", load=0.2, combo="nft"),
        policy=policy,
        requests=60,
    )
    for policy in (
        PolicySpec.of("ubik", slack=0.05),
        PolicySpec.of("lru", label="LRU"),
    )
]


def store_tree(root):
    """Every file under a store root, path → bytes."""
    return {
        p.relative_to(root).as_posix(): p.read_bytes()
        for p in root.rglob("*")
        if p.is_file()
    }


def export_tree(store, destination):
    """Canonical-export a store and return its path → bytes map."""
    store.export_canonical(destination)
    return {
        p.relative_to(destination).as_posix(): p.read_bytes()
        for p in destination.rglob("*")
        if p.is_file()
    }


@pytest.fixture(autouse=True)
def _fresh_state(monkeypatch):
    """Empty artifact cache and clean toggles per test: grid replay and
    lockstep are both on by default; the off arm pins ``REPRO_LOCKSTEP``
    explicitly while grouping stays on, so the two arms differ only in
    the engine driving the group."""
    monkeypatch.delenv("REPRO_GRID_REPLAY", raising=False)
    monkeypatch.delenv("REPRO_LOCKSTEP", raising=False)
    monkeypatch.delenv("REPRO_ARTIFACTS", raising=False)
    reset_artifacts()
    yield
    reset_artifacts()


def run_sweep(root):
    """The 2-policy sweep into a fresh store; returns its records."""
    return Session(store=ResultStore(root)).run_many(GOLDEN_SPECS)


def test_directory_store_trees_byte_identical(tmp_path, monkeypatch):
    lockstep_records = run_sweep(tmp_path / "lockstep")
    # The sweep must actually have replayed as a group (and hence in
    # lockstep, the default engine), or this test proves nothing.
    counters = get_artifacts().stats()["kinds"]["replay_group"]
    assert (counters["hits"], counters["misses"]) == (1, 1)

    reset_artifacts()
    monkeypatch.setenv("REPRO_LOCKSTEP", "0")
    grouped_records = run_sweep(tmp_path / "grouped")
    counters = get_artifacts().stats()["kinds"]["replay_group"]
    assert (counters["hits"], counters["misses"]) == (1, 1)

    assert lockstep_records == grouped_records
    lockstep_tree = store_tree(tmp_path / "lockstep")
    assert lockstep_tree == store_tree(tmp_path / "grouped")
    # Run record per policy plus the shared baseline document.
    assert len(lockstep_tree) == 3


def test_sqlite_canonical_exports_byte_identical(tmp_path, monkeypatch):
    """Same parity on the sqlite engine, compared through canonical
    exports: raw ``.db`` bytes are allowed to differ with insertion
    order, the logical corpus is not."""
    lockstep_store = ResultStore(f"sqlite://{tmp_path}/lockstep.db")
    Session(store=lockstep_store).run_many(GOLDEN_SPECS)
    lockstep_export = export_tree(lockstep_store, tmp_path / "export-lockstep")
    lockstep_store.close()

    reset_artifacts()
    monkeypatch.setenv("REPRO_LOCKSTEP", "0")
    grouped_store = ResultStore(f"sqlite://{tmp_path}/grouped.db")
    Session(store=grouped_store).run_many(GOLDEN_SPECS)
    grouped_export = export_tree(grouped_store, tmp_path / "export-grouped")
    grouped_store.close()

    assert len(lockstep_export) == 3
    assert lockstep_export == grouped_export


@pytest.mark.parametrize("first_mode", ["lockstep-first", "grouped-first"])
def test_mode_switched_rerun_is_a_pure_store_hit(tmp_path, monkeypatch, first_mode):
    """A corpus written under one engine serves a rerun under the other
    as pure store hits: same records, same bytes, no simulation (the
    rerun's replay-group counters stay empty — every cell resolved from
    the store before any group formed)."""
    root = tmp_path / "store"
    if first_mode == "grouped-first":
        monkeypatch.setenv("REPRO_LOCKSTEP", "0")
    first = run_sweep(root)
    tree = store_tree(root)

    reset_artifacts()
    if first_mode == "grouped-first":
        monkeypatch.delenv("REPRO_LOCKSTEP")
    else:
        monkeypatch.setenv("REPRO_LOCKSTEP", "0")
    again = run_sweep(root)
    assert again == first
    assert store_tree(root) == tree
    assert "replay_group" not in get_artifacts().stats()["kinds"]
