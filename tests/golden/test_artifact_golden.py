"""Artifact-cache-on vs -off determinism on a golden-suite grid.

The acceptance bar for the artifact cache is the same as for trace
sharding: *byte identity*.  Serving streams, baselines, and workload
objects from the per-process cache must change nothing about what
lands in the store — not a float, not a byte, not a file.  This runs a
two-policy sweep (the Ubik and LRU cells of the pinned ``tests/golden``
grid) into fresh store roots with the cache enabled and disabled and
compares the resulting store *trees* — every file, every byte.
"""

import pytest

from repro.runtime import (
    MixRef,
    PolicySpec,
    ResultStore,
    RunSpec,
    Session,
    get_artifacts,
    reset_artifacts,
)

#: A 2-policy sweep over the golden grid's (masstree, low-load, nft)
#: mix — the same mix test_sharding_golden pins, now across policies so
#: the run shares a baseline and streams the way a real sweep does.
GOLDEN_SPECS = [
    RunSpec(
        mix=MixRef(lc_name="masstree", load=0.2, combo="nft"),
        policy=policy,
        requests=60,
    )
    for policy in (
        PolicySpec.of("ubik", slack=0.05),
        PolicySpec.of("lru", label="LRU"),
    )
]


def store_tree(root):
    """Every file under a store root, path → bytes."""
    return {
        p.relative_to(root).as_posix(): p.read_bytes()
        for p in root.rglob("*")
        if p.is_file()
    }


def run_sweep(root):
    """The 2-policy sweep into a fresh store; returns its records."""
    return Session(store=ResultStore(root)).run_many(GOLDEN_SPECS)


@pytest.fixture(autouse=True)
def _fresh_artifacts(monkeypatch):
    """Empty cache, enabled regardless of the invoking environment —
    the cache-off arm is pinned explicitly via ``disabled()``."""
    monkeypatch.delenv("REPRO_ARTIFACTS", raising=False)
    reset_artifacts()
    yield
    reset_artifacts()


def test_cache_on_and_cache_off_store_trees_byte_identical(tmp_path):
    on_root = tmp_path / "artifacts-on"
    off_root = tmp_path / "artifacts-off"

    on_records = run_sweep(on_root)
    # The cached sweep must actually have exercised the cache, or this
    # test proves nothing.
    stats = get_artifacts().stats()["kinds"]
    assert stats["stream"]["hits"] > 0
    assert stats["baseline"]["misses"] == 1

    reset_artifacts()
    with get_artifacts().disabled():
        off_records = run_sweep(off_root)

    assert on_records == off_records
    on_tree = store_tree(on_root)
    assert on_tree == store_tree(off_root)
    # Run record per policy plus the shared baseline document.
    assert len(on_tree) == 3


def test_warm_process_rerun_is_a_pure_store_hit(tmp_path):
    """Re-running the sweep in the same (artifact-warm) process serves
    everything from the store without writing a byte."""
    root = tmp_path / "store"
    first = run_sweep(root)
    tree = store_tree(root)
    again = run_sweep(root)
    assert again == first
    assert store_tree(root) == tree
