"""Sharded-vs-unsharded determinism matrix on a golden-suite spec.

The acceptance bar for trace sharding is *byte identity*: splitting a
run's per-instance baseline streams across workers must change nothing
about what lands in the store — not a float, not a byte.  This matrix
evaluates one golden-suite spec (the Ubik cell of the pinned
``tests/golden`` grid) at 1/2/4 shards under each of the three
executors and compares the raw on-disk store documents — the run
record *and* the merged baseline — against the serial unsharded
reference, byte for byte.
"""

import pytest

from repro.runtime import (
    MixRef,
    PolicySpec,
    ResultStore,
    RunSpec,
    Session,
    make_executor,
)

#: The Ubik run of the golden grid (see test_golden.GOLDEN_SCALE):
#: masstree at low load against the nft batch trio, 60 requests.
GOLDEN_SPEC = RunSpec(
    mix=MixRef(lc_name="masstree", load=0.2, combo="nft"),
    policy=PolicySpec.of("ubik", slack=0.05),
    requests=60,
)

EXECUTORS = ("serial", "parallel", "async")
SHARD_COUNTS = (1, 2, 4)


def evaluate(tmp_path, kind, shards):
    """Run the golden spec in a fresh store; return both documents' bytes."""
    root = tmp_path / f"{kind}-{shards}"
    session = Session(
        store=ResultStore(root),
        executor=make_executor(2, kind=kind),
        shards=shards,
    )
    record = session.run(GOLDEN_SPEC)
    run_doc = session.store.document_path(GOLDEN_SPEC.fingerprint())
    base_doc = session.store.document_path(
        GOLDEN_SPEC.baseline_spec().fingerprint()
    )
    assert run_doc.exists() and base_doc.exists()
    return record, run_doc.read_bytes(), base_doc.read_bytes()


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """The serial, unsharded ground truth every cell must reproduce."""
    return evaluate(tmp_path_factory.mktemp("reference"), "serial", 1)


@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize("kind", EXECUTORS)
def test_store_documents_byte_identical(kind, shards, tmp_path, reference):
    ref_record, ref_run, ref_base = reference
    record, run_bytes, base_bytes = evaluate(tmp_path, kind, shards)
    assert record == ref_record
    assert run_bytes == ref_run, (
        f"run document drifted at {kind}/--shards {shards}"
    )
    assert base_bytes == ref_base, (
        f"baseline document drifted at {kind}/--shards {shards}"
    )


def test_sharded_store_tree_identical_to_unsharded(tmp_path):
    """Stronger than per-document identity: after shard-document
    reclamation, the *entire store tree* matches an unsharded run's —
    same files, same bytes, nothing left behind."""

    def tree(root):
        return {
            p.relative_to(root).as_posix(): p.read_bytes()
            for p in root.rglob("*")
            if p.is_file()
        }

    sharded_root = tmp_path / "sharded"
    plain_root = tmp_path / "plain"
    Session(
        store=ResultStore(sharded_root),
        executor=make_executor(2, kind="parallel"),
        shards=4,
    ).run(GOLDEN_SPEC)
    Session(
        store=ResultStore(plain_root), executor=make_executor(1, kind="serial")
    ).run(GOLDEN_SPEC)
    assert tree(sharded_root) == tree(plain_root)


def test_sharded_run_through_served_store_matches_local_tree(tmp_path):
    """The network-hop arm of the sharding matrix: a sharded parallel
    run whose fork-pool workers reach the parent's served store over
    TCP must leave the same post-reclaim corpus, canonical-exported
    byte-identical to a plain local run's tree."""
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "runtime"))
    from fault_injection import live_server

    def tree(root):
        return {
            p.relative_to(root).as_posix(): p.read_bytes()
            for p in root.rglob("*")
            if p.is_file()
        }

    plain_root = tmp_path / "plain"
    Session(
        store=ResultStore(plain_root), executor=make_executor(1, kind="serial")
    ).run(GOLDEN_SPEC)

    with live_server(f"sqlite://{tmp_path}/served.db") as server:
        store = ResultStore(server.url)
        Session(
            store=store,
            executor=make_executor(2, kind="parallel"),
            shards=4,
        ).run(GOLDEN_SPEC)
        assert store.backend.doc_count() == 2  # shard docs reclaimed
        export = tmp_path / "export-http"
        store.export_canonical(export)
        store.close()
    assert tree(export) == tree(plain_root)


def test_resharded_rerun_hits_the_same_logical_result(tmp_path):
    """Shard topology never enters the logical fingerprints: a store
    populated at one shard count serves a rerun at any other."""
    root = tmp_path / "store"
    first = Session(
        store=ResultStore(root), executor=make_executor(2, kind="parallel"),
        shards=4,
    ).run(GOLDEN_SPEC)
    reread = Session(
        store=ResultStore(root), executor=make_executor(1, kind="serial"),
        shards=2,
    ).run(GOLDEN_SPEC)
    assert reread == first
