"""Cross-backend byte parity on a golden-suite grid.

The acceptance bar for the pluggable storage layer is *byte identity*:
the same sweep run against any engine — directory tree, sqlite file,
in-memory, or a store served over HTTP — must produce a logical store
whose canonical export is byte-for-byte identical to the directory
backend's own tree.  This runs the pinned 2-policy sweep (the Ubik and
LRU cells of the ``tests/golden`` grid) against all four backends,
with the artifact cache both on and off, exports every corpus, and
compares the trees — every file, every byte.  Migration hops
(directory → sqlite → directory, and sqlite ↔ http) must preserve
those bytes too, and — the wall the network hop is held to — the same
sweep pushed through a server dropping, erroring, and truncating at
least 20% of requests on a seeded schedule must still export the very
same bytes.
"""

import contextlib
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "runtime"))

from fault_injection import FaultSchedule, live_server  # noqa: E402

from repro.runtime import (
    MixRef,
    PolicySpec,
    ResultStore,
    RunSpec,
    Session,
    get_artifacts,
    migrate_store,
    reset_artifacts,
)

#: The same 2-policy golden sweep test_artifact_golden pins: one shared
#: baseline, two run records.
GOLDEN_SPECS = [
    RunSpec(
        mix=MixRef(lc_name="masstree", load=0.2, combo="nft"),
        policy=policy,
        requests=60,
    )
    for policy in (
        PolicySpec.of("ubik", slack=0.05),
        PolicySpec.of("lru", label="LRU"),
    )
]

BACKEND_NAMES = ("directory", "sqlite", "memory", "http")


def make_store(name, tmp_path, stack=None):
    """A fresh ResultStore on the named engine under tmp_path.

    The http engine needs a live served store: ``stack`` (an
    ``ExitStack``) owns the server's lifetime.
    """
    if name == "directory":
        return ResultStore(str(tmp_path / "tree"))
    if name == "sqlite":
        return ResultStore(f"sqlite://{tmp_path}/store.db")
    if name == "http":
        server = stack.enter_context(
            live_server(f"sqlite://{tmp_path}/served.db")
        )
        return ResultStore(server.url)
    return ResultStore(None)


def export_tree(store, destination):
    """Canonical-export a store and return its path → bytes map."""
    store.export_canonical(destination)
    return {
        p.relative_to(destination).as_posix(): p.read_bytes()
        for p in destination.rglob("*")
        if p.is_file()
    }


@pytest.fixture(autouse=True)
def _fresh_artifacts(monkeypatch):
    """Empty artifact cache per test; tier 2 off so every arm computes
    (or not) purely by its own cache toggle."""
    monkeypatch.delenv("REPRO_ARTIFACTS", raising=False)
    monkeypatch.delenv("REPRO_ARTIFACTS_TIER2", raising=False)
    reset_artifacts()
    yield
    reset_artifacts()


@pytest.mark.parametrize("cache_arm", ["cache-on", "cache-off"])
def test_canonical_exports_byte_identical_across_backends(cache_arm, tmp_path):
    exports = {}
    records = {}
    with contextlib.ExitStack() as stack:
        for name in BACKEND_NAMES:
            reset_artifacts()
            store = make_store(name, tmp_path / name, stack)
            session = Session(store=store)
            if cache_arm == "cache-off":
                with get_artifacts().disabled():
                    records[name] = session.run_many(GOLDEN_SPECS)
            else:
                records[name] = session.run_many(GOLDEN_SPECS)
            exports[name] = export_tree(store, tmp_path / f"export-{name}")
            store.close()

    assert records["sqlite"] == records["directory"]
    assert records["memory"] == records["directory"]
    assert records["http"] == records["directory"]
    reference = exports["directory"]
    # Run record per policy plus the shared baseline document.
    assert len(reference) == 3
    assert exports["sqlite"] == reference
    assert exports["memory"] == reference
    assert exports["http"] == reference  # the network hop changes no bytes
    # And the directory backend's export reproduces its own tree.
    tree = {
        p.relative_to(tmp_path / "directory" / "tree").as_posix(): p.read_bytes()
        for p in (tmp_path / "directory" / "tree").rglob("*")
        if p.is_file()
    }
    assert tree == reference


def test_migration_hop_preserves_golden_bytes(tmp_path):
    origin = make_store("directory", tmp_path / "origin")
    Session(store=origin).run_many(GOLDEN_SPECS)
    origin_tree = export_tree(origin, tmp_path / "export-origin")

    sqlite_url = f"sqlite://{tmp_path}/hop.db"
    counts = migrate_store(origin.share_target(), sqlite_url)
    assert counts["documents"] == 3

    back = str(tmp_path / "back")
    migrate_store(sqlite_url, back)
    back_tree = export_tree(ResultStore(back), tmp_path / "export-back")
    assert back_tree == origin_tree


def test_migrated_corpus_serves_a_rerun_without_computing(tmp_path):
    """A sweep against a corpus migrated into sqlite is a pure store
    hit: same records, not one new document."""
    origin = make_store("directory", tmp_path / "origin")
    first = Session(store=origin).run_many(GOLDEN_SPECS)

    sqlite_url = f"sqlite://{tmp_path}/hop.db"
    migrate_store(origin.share_target(), sqlite_url)

    reset_artifacts()
    migrated = ResultStore(sqlite_url)
    before = len(migrated)
    again = Session(store=migrated).run_many(GOLDEN_SPECS)
    assert again == first
    assert len(migrated) == before


def test_migration_round_trips_sqlite_and_http_verbatim(tmp_path):
    """``repro cache --migrate`` across the network hop: a golden
    corpus pushed into a served store and pulled back out again is
    verbatim — same documents, same canonical bytes at every stop."""
    sqlite_url = f"sqlite://{tmp_path}/origin.db"
    origin = ResultStore(sqlite_url)
    Session(store=origin).run_many(GOLDEN_SPECS)
    origin_tree = export_tree(origin, tmp_path / "export-origin")
    origin.close()

    with live_server(f"sqlite://{tmp_path}/served.db") as server:
        up = migrate_store(sqlite_url, server.url)
        assert up == {"documents": 3, "blobs": 0}
        served_tree = export_tree(
            ResultStore(server.url), tmp_path / "export-served"
        )
        back_url = f"sqlite://{tmp_path}/back.db"
        down = migrate_store(server.url, back_url)
        assert down["documents"] == 3
    back_tree = export_tree(ResultStore(back_url), tmp_path / "export-back")
    assert served_tree == origin_tree
    assert back_tree == origin_tree


def test_faulty_network_sweep_stays_byte_identical(tmp_path, monkeypatch):
    """The acceptance wall: with the injector failing well over 20% of
    requests on a seeded schedule, the 2-policy sweep through the http
    engine completes, and its canonical export is byte-identical to
    the same sweep on the directory engine."""
    reference = make_store("directory", tmp_path / "ref")
    ref_records = Session(store=reference).run_many(GOLDEN_SPECS)
    ref_tree = export_tree(reference, tmp_path / "export-ref")
    reference.close()

    reset_artifacts()
    monkeypatch.setenv("REPRO_HTTP_RETRIES", "8")
    monkeypatch.setenv("REPRO_HTTP_BACKOFF", "0.002")
    schedule = FaultSchedule(2014, drop=0.15, error=0.15, truncate=0.06)
    with live_server(
        f"sqlite://{tmp_path}/served.db", injector=schedule
    ) as server:
        store = ResultStore(server.url)
        records = Session(store=store).run_many(GOLDEN_SPECS)
        tree = export_tree(store, tmp_path / "export-http")
        store.close()

    assert records == ref_records
    assert tree == ref_tree  # diff -r clean, byte for byte
    # The wall actually pushed: a meaningful fraction of requests were
    # dropped, errored, or truncated.
    assert schedule.total >= 10
    assert schedule.failure_fraction >= 0.2
