"""Cross-backend byte parity on a golden-suite grid.

The acceptance bar for the pluggable storage layer is *byte identity*:
the same sweep run against any engine — directory tree, sqlite file,
or in-memory — must produce a logical store whose canonical export is
byte-for-byte identical to the directory backend's own tree.  This
runs the pinned 2-policy sweep (the Ubik and LRU cells of the
``tests/golden`` grid) against all three backends, with the artifact
cache both on and off, exports every corpus, and compares the trees —
every file, every byte.  A migration hop (directory → sqlite →
directory) must preserve those bytes too.
"""

import pytest

from repro.runtime import (
    MixRef,
    PolicySpec,
    ResultStore,
    RunSpec,
    Session,
    get_artifacts,
    migrate_store,
    reset_artifacts,
)

#: The same 2-policy golden sweep test_artifact_golden pins: one shared
#: baseline, two run records.
GOLDEN_SPECS = [
    RunSpec(
        mix=MixRef(lc_name="masstree", load=0.2, combo="nft"),
        policy=policy,
        requests=60,
    )
    for policy in (
        PolicySpec.of("ubik", slack=0.05),
        PolicySpec.of("lru", label="LRU"),
    )
]

BACKEND_NAMES = ("directory", "sqlite", "memory")


def make_store(name, tmp_path):
    """A fresh ResultStore on the named engine under tmp_path."""
    if name == "directory":
        return ResultStore(str(tmp_path / "tree"))
    if name == "sqlite":
        return ResultStore(f"sqlite://{tmp_path}/store.db")
    return ResultStore(None)


def export_tree(store, destination):
    """Canonical-export a store and return its path → bytes map."""
    store.export_canonical(destination)
    return {
        p.relative_to(destination).as_posix(): p.read_bytes()
        for p in destination.rglob("*")
        if p.is_file()
    }


@pytest.fixture(autouse=True)
def _fresh_artifacts(monkeypatch):
    """Empty artifact cache per test; tier 2 off so every arm computes
    (or not) purely by its own cache toggle."""
    monkeypatch.delenv("REPRO_ARTIFACTS", raising=False)
    monkeypatch.delenv("REPRO_ARTIFACTS_TIER2", raising=False)
    reset_artifacts()
    yield
    reset_artifacts()


@pytest.mark.parametrize("cache_arm", ["cache-on", "cache-off"])
def test_canonical_exports_byte_identical_across_backends(cache_arm, tmp_path):
    exports = {}
    records = {}
    for name in BACKEND_NAMES:
        reset_artifacts()
        store = make_store(name, tmp_path / name)
        session = Session(store=store)
        if cache_arm == "cache-off":
            with get_artifacts().disabled():
                records[name] = session.run_many(GOLDEN_SPECS)
        else:
            records[name] = session.run_many(GOLDEN_SPECS)
        exports[name] = export_tree(store, tmp_path / f"export-{name}")
        store.close()

    assert records["sqlite"] == records["directory"]
    assert records["memory"] == records["directory"]
    reference = exports["directory"]
    # Run record per policy plus the shared baseline document.
    assert len(reference) == 3
    assert exports["sqlite"] == reference
    assert exports["memory"] == reference
    # And the directory backend's export reproduces its own tree.
    tree = {
        p.relative_to(tmp_path / "directory" / "tree").as_posix(): p.read_bytes()
        for p in (tmp_path / "directory" / "tree").rglob("*")
        if p.is_file()
    }
    assert tree == reference


def test_migration_hop_preserves_golden_bytes(tmp_path):
    origin = make_store("directory", tmp_path / "origin")
    Session(store=origin).run_many(GOLDEN_SPECS)
    origin_tree = export_tree(origin, tmp_path / "export-origin")

    sqlite_url = f"sqlite://{tmp_path}/hop.db"
    counts = migrate_store(origin.share_target(), sqlite_url)
    assert counts["documents"] == 3

    back = str(tmp_path / "back")
    migrate_store(sqlite_url, back)
    back_tree = export_tree(ResultStore(back), tmp_path / "export-back")
    assert back_tree == origin_tree


def test_migrated_corpus_serves_a_rerun_without_computing(tmp_path):
    """A sweep against a corpus migrated into sqlite is a pure store
    hit: same records, not one new document."""
    origin = make_store("directory", tmp_path / "origin")
    first = Session(store=origin).run_many(GOLDEN_SPECS)

    sqlite_url = f"sqlite://{tmp_path}/hop.db"
    migrate_store(origin.share_target(), sqlite_url)

    reset_artifacts()
    migrated = ResultStore(sqlite_url)
    before = len(migrated)
    again = Session(store=migrated).run_many(GOLDEN_SPECS)
    assert again == first
    assert len(migrated) == before
