"""Regenerate the golden fixtures after an *intentional* change.

Usage::

    PYTHONPATH=src python tests/golden/regenerate.py

Rewrites ``tests/golden/fixtures/*.json`` from the current engine.
Only do this when a PR deliberately changes simulation semantics — and
bump ``repro.runtime.spec.SPEC_SCHEMA_VERSION`` in the same PR so
persisted stores from the old generation prune cleanly.
"""

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from test_golden import BUILDERS, FIXTURES  # noqa: E402

from repro.runtime import ResultStore, SerialExecutor, Session  # noqa: E402
from repro.runtime.spec import canonical_json  # noqa: E402


def main() -> int:
    FIXTURES.mkdir(parents=True, exist_ok=True)
    session = Session(store=ResultStore(None), executor=SerialExecutor())
    for name, builder in sorted(BUILDERS.items()):
        payload = json.loads(canonical_json(builder(session)))
        path = FIXTURES / f"{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
