"""The node-loss wall: a replicated fabric survives a dying node.

PR 8's wall proved a flaky *wire* cannot corrupt the corpus; this suite
raises it to whole-node death.  A seeded golden sweep runs against a
3-node/R=2 ``cluster://`` fabric (three served sqlite stores) whose
first node is killed mid-run — every request to it goes dark, exactly
as if the process were gone — and must:

* complete, with zero lost and zero double-applied documents;
* export canonically **byte-identical** to the directory engine;
* after the node revives and write-behind repairs drain, hold every
  document on its full replica set again;
* serve a healthy-fabric rerun as a pure store hit (no recompute, not
  one new document).
"""

import contextlib
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "runtime"))

from fault_injection import NodeOutage, live_server  # noqa: E402

from repro.runtime import (
    MixRef,
    PolicySpec,
    ResultStore,
    RunSpec,
    Session,
    migrate_store,
    reset_artifacts,
)
from repro.runtime.backends import make_backend
from repro.runtime.backends.cluster import ClusterBackend

#: The same 2-policy golden sweep the other golden suites pin: one
#: shared baseline document, two run records.
GOLDEN_SPECS = [
    RunSpec(
        mix=MixRef(lc_name="masstree", load=0.2, combo="nft"),
        policy=policy,
        requests=60,
    )
    for policy in (
        PolicySpec.of("ubik", slack=0.05),
        PolicySpec.of("lru", label="LRU"),
    )
]


@pytest.fixture(autouse=True)
def _fresh_artifacts(monkeypatch):
    """Empty artifact cache per test; tier 2 off.  Fast failover knobs:
    a dead node must cost milliseconds per probe, not timeouts."""
    monkeypatch.delenv("REPRO_ARTIFACTS", raising=False)
    monkeypatch.delenv("REPRO_ARTIFACTS_TIER2", raising=False)
    monkeypatch.setenv("REPRO_HTTP_RETRIES", "2")
    monkeypatch.setenv("REPRO_HTTP_BACKOFF", "0.002")
    monkeypatch.setenv("REPRO_CLUSTER_PROBE_BASE", "0.02")
    monkeypatch.setenv("REPRO_CLUSTER_PROBE_CAP", "0.1")
    reset_artifacts()
    yield
    reset_artifacts()


def serve_fabric(tmp_path, stack, nodes=3, replicas=2, outages=None):
    """``(cluster url, servers)`` for N served sqlite nodes."""
    servers = [
        stack.enter_context(
            live_server(
                f"sqlite://{tmp_path}/node{index}.db",
                injector=None if outages is None else outages[index],
            )
        )
        for index in range(nodes)
    ]
    url = f"cluster://replicas={replicas};" + ";".join(s.url for s in servers)
    return url, servers


def export_tree(store, destination):
    """Canonical-export a store and return its path → bytes map."""
    store.export_canonical(destination)
    return {
        p.relative_to(destination).as_posix(): p.read_bytes()
        for p in destination.rglob("*")
        if p.is_file()
    }


def reference_run(tmp_path):
    """The directory-engine truth: records and canonical bytes."""
    store = ResultStore(str(tmp_path / "ref-tree"))
    records = Session(store=store).run_many(GOLDEN_SPECS)
    tree = export_tree(store, tmp_path / "export-ref")
    store.close()
    return records, tree


def test_healthy_fabric_sweep_exports_byte_identical(tmp_path):
    ref_records, ref_tree = reference_run(tmp_path)
    reset_artifacts()
    with contextlib.ExitStack() as stack:
        url, _servers = serve_fabric(tmp_path, stack)
        store = ResultStore(url)  # cluster:// straight through the parser
        assert isinstance(store.backend, ClusterBackend)
        records = Session(store=store).run_many(GOLDEN_SPECS)
        tree = export_tree(store, tmp_path / "export-cluster")

        assert records == ref_records
        assert tree == ref_tree
        # Replication actually happened: each of the 3 documents lives
        # on exactly R=2 of the 3 nodes, so raw copies total 6.
        fabric = store.backend
        raw = sum(node.backend.doc_count() for node in fabric._nodes)
        assert raw == 2 * len(ref_tree)
        # share_target round-trips: a second process would reopen the
        # same fabric from the URL alone and see the same corpus.
        assert store.share_target() == fabric.url
        reopened = ResultStore(make_backend(store.share_target()))
        assert len(reopened) == len(ref_tree)
        store.close()
        reopened.close()


def test_node_loss_mid_sweep_wall(tmp_path):
    """The acceptance wall, end to end: kill one node mid-sweep, lose
    nothing; revive it, repair, and rerun as a pure store hit."""
    ref_records, ref_tree = reference_run(tmp_path)
    reset_artifacts()
    with contextlib.ExitStack() as stack:
        outages = [NodeOutage(), NodeOutage(), NodeOutage()]
        url, _servers = serve_fabric(tmp_path, stack, outages=outages)
        store = ResultStore(url)
        fabric = store.backend

        # Cell 1 lands on the healthy fabric; then node 0 goes dark —
        # mid-sweep, with the shared baseline and the first run record
        # already replicated through it — and cell 2 must complete
        # against the degraded fabric.  (The kill is placed between
        # cells rather than at a request count because replica
        # placement hashes over the nodes' ephemeral ports: any fixed
        # count is a different moment on every run.)
        session = Session(store=store)
        records = [session.run(GOLDEN_SPECS[0])]
        outages[0].kill()
        records.append(session.run(GOLDEN_SPECS[1]))

        # Zero data loss, zero double-apply: the degraded fabric's
        # canonical export is byte-identical to the directory engine —
        # same three documents, same bytes, nothing extra.
        tree = export_tree(store, tmp_path / "export-degraded")
        assert records == ref_records
        assert tree == ref_tree
        # The dead node was really exercised and really dark: the
        # degraded sweep/export sent it requests and every one dropped.
        assert outages[0].dropped > 0

        status = fabric.status()
        assert [n["healthy"] for n in status["nodes"]] == [False, True, True]

        # Revive the node and drain the write-behind repairs: every
        # document must land back on its full R=2 replica set.
        outages[0].revive()
        outcome = fabric.repair()
        assert outcome["pending"] == 0
        for fingerprint in tree:
            fp = Path(fingerprint).stem
            holders = [
                replica
                for replica in fabric.replicas_for(fp)
                if replica.get_doc(fp) is not None
            ]
            assert len(holders) == 2
        raw = sum(node.backend.doc_count() for node in fabric._nodes)
        assert raw == 2 * len(ref_tree)
        assert [
            n["healthy"] for n in fabric.status()["nodes"]
        ] == [True, True, True]

        # Healthy-fabric rerun: a pure store hit — identical records,
        # not one new document anywhere in the fabric.
        reset_artifacts()
        again_store = ResultStore(url)
        again = Session(store=again_store).run_many(GOLDEN_SPECS)
        assert again == ref_records
        assert sum(node.backend.doc_count() for node in fabric._nodes) == raw
        # And the healed fabric still exports the same bytes.
        assert export_tree(again_store, tmp_path / "export-healed") == ref_tree
        store.close()
        again_store.close()


def test_migration_through_the_fabric_round_trips(tmp_path):
    """``repro cache --migrate`` works over the composite: directory →
    cluster → directory preserves every canonical byte."""
    ref_records, ref_tree = reference_run(tmp_path)
    reset_artifacts()
    with contextlib.ExitStack() as stack:
        url, _servers = serve_fabric(tmp_path, stack)
        up = migrate_store(str(tmp_path / "ref-tree"), url)
        assert up["documents"] == len(ref_tree)
        back = str(tmp_path / "back-tree")
        down = migrate_store(url, back)
        assert down["documents"] == len(ref_tree)
        assert export_tree(ResultStore(back), tmp_path / "export-back") == (
            ref_tree
        )


def test_fabric_survives_node_loss_during_export(tmp_path):
    """Even the export itself fails over: kill a node after the sweep,
    then export — the union over live replicas is still the corpus."""
    ref_records, ref_tree = reference_run(tmp_path)
    reset_artifacts()
    with contextlib.ExitStack() as stack:
        outages = [NodeOutage(), NodeOutage(), NodeOutage()]
        url, _servers = serve_fabric(tmp_path, stack, outages=outages)
        store = ResultStore(url)
        records = Session(store=store).run_many(GOLDEN_SPECS)
        assert records == ref_records
        outages[2].kill()  # a different node than the mid-run wall's
        tree = export_tree(store, tmp_path / "export-lost-node")
        assert tree == ref_tree
        store.close()
