"""Grid-replay-on vs -off determinism on a golden-suite grid.

The acceptance bar for replay grouping is the same as for the artifact
cache and the storage backends: *byte identity*.  Routing a sweep's
cells through shared replay groups must change nothing about what
lands in the store — not a float, not a byte, not a file.  This runs
the pinned 2-policy sweep (the Ubik and LRU cells of the
``tests/golden`` grid) into fresh store roots with grouping enabled
(the default) and disabled (``REPRO_GRID_REPLAY=0``, the scalar
per-cell oracle) and compares the resulting stores — raw trees on the
directory backend, canonical exports on sqlite (whose raw file bytes
legitimately depend on insertion order).  A corpus written either way
must also serve a rerun under the *other* mode as a pure store hit.
"""

import pytest

from repro.runtime import (
    MixRef,
    PolicySpec,
    ResultStore,
    RunSpec,
    Session,
    get_artifacts,
    reset_artifacts,
)

#: The same 2-policy golden sweep test_artifact_golden pins: one shared
#: baseline, two run records — and, grouped, one two-cell replay group.
GOLDEN_SPECS = [
    RunSpec(
        mix=MixRef(lc_name="masstree", load=0.2, combo="nft"),
        policy=policy,
        requests=60,
    )
    for policy in (
        PolicySpec.of("ubik", slack=0.05),
        PolicySpec.of("lru", label="LRU"),
    )
]


def store_tree(root):
    """Every file under a store root, path → bytes."""
    return {
        p.relative_to(root).as_posix(): p.read_bytes()
        for p in root.rglob("*")
        if p.is_file()
    }


def export_tree(store, destination):
    """Canonical-export a store and return its path → bytes map."""
    store.export_canonical(destination)
    return {
        p.relative_to(destination).as_posix(): p.read_bytes()
        for p in destination.rglob("*")
        if p.is_file()
    }


@pytest.fixture(autouse=True)
def _fresh_state(monkeypatch):
    """Empty artifact cache and a clean toggle per test: grouping is on
    by default; the off arm is pinned explicitly per arm."""
    monkeypatch.delenv("REPRO_GRID_REPLAY", raising=False)
    monkeypatch.delenv("REPRO_ARTIFACTS", raising=False)
    reset_artifacts()
    yield
    reset_artifacts()


def run_sweep(root):
    """The 2-policy sweep into a fresh store; returns its records."""
    return Session(store=ResultStore(root)).run_many(GOLDEN_SPECS)


def test_directory_store_trees_byte_identical(tmp_path, monkeypatch):
    grouped_records = run_sweep(tmp_path / "grouped")
    # The grouped sweep must actually have batched its replay, or this
    # test proves nothing: one group of two cells = one miss, one hit.
    counters = get_artifacts().stats()["kinds"]["replay_group"]
    assert (counters["hits"], counters["misses"]) == (1, 1)

    reset_artifacts()
    monkeypatch.setenv("REPRO_GRID_REPLAY", "0")
    scalar_records = run_sweep(tmp_path / "scalar")
    assert "replay_group" not in get_artifacts().stats()["kinds"]

    assert grouped_records == scalar_records
    grouped_tree = store_tree(tmp_path / "grouped")
    assert grouped_tree == store_tree(tmp_path / "scalar")
    # Run record per policy plus the shared baseline document.
    assert len(grouped_tree) == 3


def test_sqlite_canonical_exports_byte_identical(tmp_path, monkeypatch):
    """Same parity on the sqlite engine, compared through canonical
    exports: raw ``.db`` bytes are allowed to differ with insertion
    order, the logical corpus is not."""
    grouped_store = ResultStore(f"sqlite://{tmp_path}/grouped.db")
    Session(store=grouped_store).run_many(GOLDEN_SPECS)
    grouped_export = export_tree(grouped_store, tmp_path / "export-grouped")
    grouped_store.close()

    reset_artifacts()
    monkeypatch.setenv("REPRO_GRID_REPLAY", "0")
    scalar_store = ResultStore(f"sqlite://{tmp_path}/scalar.db")
    Session(store=scalar_store).run_many(GOLDEN_SPECS)
    scalar_export = export_tree(scalar_store, tmp_path / "export-scalar")
    scalar_store.close()

    assert len(grouped_export) == 3
    assert grouped_export == scalar_export


@pytest.mark.parametrize("first_mode", ["grouped-first", "scalar-first"])
def test_regrouped_rerun_is_a_pure_store_hit(tmp_path, monkeypatch, first_mode):
    """A corpus written under one replay mode serves a rerun under the
    other as pure store hits: same records, same bytes, no simulation
    (the rerun's replay-group counters stay empty — every grouped cell
    resolved from the store before any group formed)."""
    root = tmp_path / "store"
    if first_mode == "scalar-first":
        monkeypatch.setenv("REPRO_GRID_REPLAY", "0")
    first = run_sweep(root)
    tree = store_tree(root)

    reset_artifacts()
    if first_mode == "scalar-first":
        monkeypatch.delenv("REPRO_GRID_REPLAY")
    else:
        monkeypatch.setenv("REPRO_GRID_REPLAY", "0")
    again = run_sweep(root)
    assert again == first
    assert store_tree(root) == tree
    assert "replay_group" not in get_artifacts().stats()["kinds"]
