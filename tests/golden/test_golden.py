"""Golden regression suite: exact-output pinning for the experiments.

Every simulation here is deterministic, so a small fixed grid has one
correct output — committed under ``fixtures/`` as JSON.  These tests
re-run the grid and require *exact* equality (every float bit), which
catches engine-semantics drift at PR time: any intentional change to
the numbers must regenerate the fixtures (``python
tests/golden/regenerate.py``) **and** bump
``repro.runtime.spec.SPEC_SCHEMA_VERSION`` so stale stores prune
cleanly.
"""

import json
from dataclasses import asdict
from pathlib import Path

import pytest

from repro.experiments.common import ExperimentScale
from repro.experiments.fig12_slack import run_fig12
from repro.experiments.fig13_schemes import run_fig13
from repro.experiments.table3_speedups import run_table3
from repro.runtime import ResultStore, SerialExecutor, Session
from repro.runtime.spec import canonical_json

FIXTURES = Path(__file__).parent / "fixtures"

#: The pinned grid: one LC app, one combo, both paper load points —
#: small enough to run in seconds, wide enough to exercise every
#: policy, every scheme model, and the slack controller.
GOLDEN_SCALE = ExperimentScale(
    requests=60,
    lc_names=("masstree",),
    loads=(0.2, 0.6),
    combos=("nft",),
    mixes_per_combo=1,
)


def build_table3(session: Session):
    """Measured Table 3 speedups on the golden grid."""
    return run_table3(GOLDEN_SCALE, session=session)


def build_fig12(session: Session):
    """Figure 12 slack-sensitivity entries on the golden grid."""
    return [asdict(e) for e in run_fig12(GOLDEN_SCALE, session=session)]


def build_fig13(session: Session):
    """Figure 13 scheme-sensitivity entries on the golden grid."""
    return [asdict(e) for e in run_fig13(GOLDEN_SCALE, session=session)]


BUILDERS = {
    "table3": build_table3,
    "fig12": build_fig12,
    "fig13": build_fig13,
}


@pytest.fixture(scope="module")
def session():
    """One memory-only serial session for the whole suite, so the
    isolated baselines are computed once and shared."""
    return Session(store=ResultStore(None), executor=SerialExecutor())


@pytest.mark.parametrize("name", sorted(BUILDERS))
def test_output_matches_golden_fixture_exactly(name, session):
    fixture_path = FIXTURES / f"{name}.json"
    assert fixture_path.exists(), (
        f"missing fixture {fixture_path}; run python tests/golden/regenerate.py"
    )
    expected = json.loads(fixture_path.read_text())
    # Round-trip through canonical JSON so the comparison sees exactly
    # what a fixture regeneration would have written.
    actual = json.loads(canonical_json(BUILDERS[name](session)))
    assert actual == expected, (
        f"{name} drifted from its golden fixture. If the change is "
        f"intentional, regenerate (python tests/golden/regenerate.py) "
        f"and bump SPEC_SCHEMA_VERSION."
    )
