"""Integration tests asserting the paper's headline claims.

These run small but complete mix simulations and check the *shape* of
the results — who wins, in which direction — not absolute numbers.
"""

import pytest

from repro.core.ubik import UbikPolicy
from repro.policies.onoff import OnOffPolicy
from repro.policies.static_lc import StaticLCPolicy
from repro.policies.ucp import UCPPolicy
from repro.sim.mix_runner import MixRunner
from repro.workloads.mixes import make_mix_specs


@pytest.fixture(scope="module")
def runner():
    return MixRunner(requests=150, seed=7)


def pick_spec(lc_name, load, combo_index=5):
    specs = make_mix_specs(lc_names=[lc_name], loads=[load], mixes_per_combo=1)
    return specs[combo_index]


@pytest.fixture(scope="module")
def shore_results(runner):
    spec = pick_spec("shore", 0.2)
    return {
        "StaticLC": runner.run_mix(spec, StaticLCPolicy()),
        "OnOff": runner.run_mix(spec, OnOffPolicy()),
        "UCP": runner.run_mix(spec, UCPPolicy()),
        "Ubik": runner.run_mix(spec, UbikPolicy(slack=0.0)),
        "Ubik-5%": runner.run_mix(spec, UbikPolicy(slack=0.05)),
    }


class TestTailLatencyClaims:
    def test_staticlc_preserves_tails(self, shore_results):
        assert shore_results["StaticLC"].tail_degradation() < 1.05

    def test_strict_ubik_preserves_tails(self, shore_results):
        """The core claim: Ubik strictly maintains tail latency."""
        assert shore_results["Ubik"].tail_degradation() < 1.05

    def test_onoff_degrades_tails(self, shore_results):
        """Ignoring inertia (OnOff) hurts an app with cross-request
        reuse."""
        assert (
            shore_results["OnOff"].tail_degradation()
            > shore_results["StaticLC"].tail_degradation() + 0.02
        )

    def test_ucp_degrades_tails(self, shore_results):
        """UCP treats the low-load LC app as low-utility and shrinks
        it, violating its tail."""
        assert shore_results["UCP"].tail_degradation() > 1.10

    def test_slack_bounded(self, shore_results):
        """Ubik with 5% slack keeps degradation near its bound."""
        assert shore_results["Ubik-5%"].tail_degradation() < 1.15


class TestThroughputClaims:
    def test_ubik_beats_staticlc_throughput(self, shore_results):
        """Exploiting idleness must buy batch throughput over pinning."""
        assert (
            shore_results["Ubik"].weighted_speedup()
            > shore_results["StaticLC"].weighted_speedup()
        )

    def test_slack_buys_more_throughput(self, shore_results):
        assert (
            shore_results["Ubik-5%"].weighted_speedup()
            >= shore_results["Ubik"].weighted_speedup() - 0.005
        )

    def test_all_schemes_beat_private_llcs(self, shore_results):
        for name, result in shore_results.items():
            assert result.weighted_speedup() > 1.0, name


class TestMosesStory:
    """Section 7.1: moses has nothing to lose at 2 MB; slack frees a
    large amount of space at no tail cost."""

    def test_moses_slack_free_lunch(self, runner):
        spec = pick_spec("moses", 0.2)
        strict = runner.run_mix(spec, UbikPolicy(slack=0.0))
        slacked = runner.run_mix(spec, UbikPolicy(slack=0.05))
        assert slacked.tail_degradation() < 1.06
        assert slacked.weighted_speedup() >= strict.weighted_speedup()


class TestXapianStory:
    """Section 7.1: xapian is cache-insensitive at low load — every
    scheme holds its tail, and Ubik downsizes it aggressively."""

    def test_xapian_low_load_all_safe(self, runner):
        spec = pick_spec("xapian", 0.2)
        for policy in (StaticLCPolicy(), UbikPolicy(slack=0.05), UCPPolicy()):
            result = runner.run_mix(spec, policy)
            assert result.tail_degradation() < 1.10

    def test_xapian_ubik_outperforms_static(self, runner):
        spec = pick_spec("xapian", 0.2)
        static = runner.run_mix(spec, StaticLCPolicy())
        ubik = runner.run_mix(spec, UbikPolicy(slack=0.05))
        assert ubik.weighted_speedup() > static.weighted_speedup()
