"""Reproducibility guarantees: same seeds, same results, everywhere."""

import numpy as np
import pytest

from repro.core.ubik import UbikPolicy
from repro.policies.ucp import UCPPolicy
from repro.sim.mix_runner import MixRunner
from repro.workloads.mixes import make_mix_specs


def fresh_result(policy_factory, seed=13, requests=80):
    spec = make_mix_specs(lc_names=["masstree"], loads=[0.2], mixes_per_combo=1)[3]
    runner = MixRunner(requests=requests, seed=seed)
    return runner.run_mix(spec, policy_factory())


class TestDeterminism:
    def test_identical_across_runner_instances(self):
        a = fresh_result(lambda: UbikPolicy(slack=0.05))
        b = fresh_result(lambda: UbikPolicy(slack=0.05))
        assert a.tail95() == pytest.approx(b.tail95(), rel=0)
        assert a.weighted_speedup() == pytest.approx(b.weighted_speedup(), rel=0)
        for ia, ib in zip(a.lc_instances, b.lc_instances):
            assert ia.latencies == ib.latencies
            assert ia.deboosts == ib.deboosts

    def test_different_seed_different_streams(self):
        a = fresh_result(UCPPolicy, seed=13)
        b = fresh_result(UCPPolicy, seed=14)
        assert a.lc_instances[0].latencies != b.lc_instances[0].latencies

    def test_mix_construction_deterministic(self):
        a = make_mix_specs(mixes_per_combo=1, seed=99)
        b = make_mix_specs(mixes_per_combo=1, seed=99)
        for sa, sb in zip(a, b):
            assert sa.mix_id == sb.mix_id
            for xa, xb in zip(sa.batch_apps, sb.batch_apps):
                assert xa.name == xb.name
                assert xa.profile == xb.profile

    def test_policy_instances_are_not_reusable_state_traps(self):
        """Running the same *fresh* policy twice must agree; a policy
        object carries controller state, so experiments construct one
        per run — verify fresh constructions behave identically."""
        first = fresh_result(lambda: UbikPolicy(slack=0.05))
        second = fresh_result(lambda: UbikPolicy(slack=0.05))
        assert first.summary() == second.summary()
