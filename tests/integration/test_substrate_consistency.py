"""Cross-substrate consistency: trace-driven arrays vs analytic models.

The mix engine substitutes behavioural models for hardware; these tests
validate the substitutions against the trace-driven reference
implementations, closing the loop the paper closes with zsim.
"""

import numpy as np
import pytest

from repro.cache.set_assoc import SetAssociativeCache
from repro.cache.vantage import VantageCache
from repro.monitor.miss_curve import MissCurve
from repro.monitor.umon import UtilityMonitor
from repro.sim.fill import FillState
from repro.workloads.trace import TraceConfig, ZipfSampler, generate_request_trace


class TestUMONMeasuresTrueCurve:
    """A UMON's sampled curve must track the cache's real miss ratios."""

    def test_umon_vs_fully_associative_cache(self):
        # Uniform popularity: address sampling is then unbiased (with
        # skewed popularity, whether the hottest lines land in the
        # sampled subset dominates the estimate — the "small UMON
        # sampling error" the paper guards against).
        rng = np.random.default_rng(0)
        addrs = rng.integers(0, 2000, size=60_000)

        umon = UtilityMonitor.for_cache(1024, ways=16, sets=4)
        for addr in addrs:
            umon.observe(int(addr))
        curve = umon.miss_curve(points=17)

        # Ground truth at one allocation: a fully-associative LRU cache
        # of the same size.
        cache = SetAssociativeCache(1024, 1024)
        for addr in addrs:
            cache.access(int(addr))
        measured = cache.miss_ratio
        predicted = float(curve(1024))
        assert predicted == pytest.approx(measured, abs=0.08)


class TestVantageMatchesFillModel:
    """The engine's one-line-per-miss growth law is exactly what the
    trace-driven Vantage cache exhibits."""

    def test_growth_trajectories_agree(self):
        # Trace: uniform accesses over a working set larger than the
        # partition target, so the miss ratio is predictable.
        capacity, target, working_set = 4096, 1024, 2048
        cache = VantageCache(capacity, 2, candidates=52, seed=1)
        cache.set_target(0, target)
        cache.set_target(1, capacity - target)
        # Fill partition 1 so the array is under pressure.
        for addr in range(10_000, 10_000 + capacity):
            cache.access(1, addr)

        rng = np.random.default_rng(2)
        misses = 0
        accesses = 4000
        for addr in rng.integers(0, working_set, size=accesses):
            if not cache.access(0, int(addr)).hit:
                misses += 1

        # Analytic model with the matching miss curve: at occupancy r,
        # a uniform working set of W lines hits with probability r/W.
        curve = MissCurve(
            [0, working_set, capacity], [1.0, 0.0, 0.0]
        )
        fill = FillState(curve, hit_interval=1.0, miss_penalty=0.0,
                         resident=0.0, target=target)
        adv = fill.advance_accesses(accesses)

        assert cache.actual_size(0) == pytest.approx(fill.resident, rel=0.1)
        assert misses == pytest.approx(adv.misses, rel=0.15)


class TestTraceStatistics:
    """Synthetic traces must respect their configured composition."""

    def test_shared_fraction_realized(self):
        config = TraceConfig(
            hot_lines=500,
            private_lines_per_request=20,
            accesses_per_request=200,
            shared_fraction=0.7,
        )
        rng = np.random.default_rng(3)
        requests = generate_request_trace(config, 30, rng)
        shared = sum(int((r < 500).sum()) for r in requests)
        total = sum(len(r) for r in requests)
        assert shared / total == pytest.approx(0.7, abs=0.02)

    def test_apki_scale_consistency(self):
        """Trace volume derives from the workload's APKI and work."""
        from repro.units import mb_to_lines
        from repro.workloads.latency_critical import make_lc_workload
        from repro.workloads.trace import lc_trace_config

        for name in ("moses", "specjbb"):
            workload = make_lc_workload(name)
            config = lc_trace_config(workload, mb_to_lines(2), scale=1.0)
            expected = workload.profile.accesses_for(workload.work.mean())
            assert config.accesses_per_request == pytest.approx(expected, rel=0.05)
