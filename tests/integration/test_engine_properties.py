"""Property-style invariants of full engine runs.

Randomized small configurations; each run must satisfy conservation
and safety properties regardless of policy or workload draw.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ubik import UbikPolicy
from repro.policies.onoff import OnOffPolicy
from repro.policies.static_lc import StaticLCPolicy
from repro.policies.ucp import UCPPolicy
from repro.sim.config import CMPConfig
from repro.sim.engine import LCInstanceSpec, MixEngine
from repro.workloads.batch import make_batch_workload
from repro.workloads.latency_critical import LC_NAMES, make_lc_workload

POLICIES = {
    "static": StaticLCPolicy,
    "ucp": UCPPolicy,
    "onoff": OnOffPolicy,
    "ubik": lambda: UbikPolicy(slack=0.05),
}


def build_engine(lc_name, load, policy_key, seed):
    workload = make_lc_workload(lc_name)
    rng = np.random.default_rng(seed)
    requests = 40
    works = np.asarray([workload.work.sample(rng) for _ in range(requests)])
    mean_service = workload.mean_service_cycles()
    arrivals = np.cumsum(rng.exponential(mean_service / load, size=requests))
    spec = LCInstanceSpec(
        workload=workload,
        arrivals=arrivals,
        works=works,
        deadline_cycles=5 * mean_service,
        target_tail_cycles=4 * mean_service,
        load=load,
    )
    return MixEngine(
        lc_specs=[spec],
        batch_workloads=[make_batch_workload("f", seed=seed)],
        policy=POLICIES[policy_key](),
        config=CMPConfig(),
        seed=seed,
        warmup_fraction=0.0,
    )


@settings(max_examples=12, deadline=None)
@given(
    lc_name=st.sampled_from(LC_NAMES),
    load=st.sampled_from([0.2, 0.5]),
    policy_key=st.sampled_from(sorted(POLICIES)),
    seed=st.integers(min_value=0, max_value=50),
)
def test_property_engine_run_invariants(lc_name, load, policy_key, seed):
    engine = build_engine(lc_name, load, policy_key, seed)
    result = engine.run()
    lc = result.lc_instances[0]

    # Every request served exactly once.
    assert lc.requests_served == 40
    assert len(lc.latencies) == 40

    # Latencies positive and at least one service time's worth.
    workload = make_lc_workload(lc_name)
    assert min(lc.latencies) > 0

    # Time moves forward and covers all arrivals.
    assert result.duration_cycles >= float(engine.lc_apps[0].spec.arrivals[-1])

    # Batch app measured over the whole run; progress is positive.
    batch = result.batch_apps[0]
    assert batch.cycles == pytest.approx(result.duration_cycles, rel=0.02)
    assert 0 < batch.ipc < 10

    # Targets within the cache at end of run.
    total_targets = sum(a.fill.target for a in engine.apps)
    assert total_targets <= engine.llc_lines + 1e-6
