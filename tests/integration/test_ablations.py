"""Ablations: isolate the contribution of each Ubik design choice.

The paper motivates three mechanisms; removing each should show its
fingerprint:

* **boosting** (Sec 5.1.1): without it, transient losses after idle
  downsizing are never repaid — tails degrade (OnOff-like failure);
* **accurate de-boosting** (Sec 5.1.1): without it, boosts are held for
  the whole active period — tails stay safe but batch throughput drops;
* **conservative bounds** (Sec 5.1): exact bounds downsize at least as
  aggressively while the engine's real transients (which the bounds
  upper-bound) keep repayment feasible.
"""

import pytest

from repro.core.ubik import UbikPolicy
from repro.sim.mix_runner import MixRunner
from repro.workloads.mixes import make_mix_specs


@pytest.fixture(scope="module")
def runner():
    return MixRunner(requests=150, seed=11)


@pytest.fixture(scope="module")
def spec():
    return make_mix_specs(lc_names=["specjbb"], loads=[0.2], mixes_per_combo=1)[5]


@pytest.fixture(scope="module")
def full(runner, spec):
    return runner.run_mix(spec, UbikPolicy(slack=0.0))


class TestNoBoost:
    def test_tails_degrade_without_boosting(self, runner):
        """Boosting earns its keep where downsizing is deep: the slack
        variant on a reuse-heavy app.  (Strict Ubik only downsizes
        where the refill loss is already cheap — matching the paper's
        small strict-Ubik-vs-StaticLC gap.)"""
        shore = make_mix_specs(
            lc_names=["shore"], loads=[0.2], mixes_per_combo=1
        )[5]
        with_boost = runner.run_mix(shore, UbikPolicy(slack=0.05))
        without = runner.run_mix(
            shore, UbikPolicy(slack=0.05, boost_enabled=False)
        )
        assert without.tail_degradation() > with_boost.tail_degradation() + 0.01

    def test_strict_noboost_still_functions(self, runner, spec, full):
        result = runner.run_mix(spec, UbikPolicy(slack=0.0, boost_enabled=False))
        assert result.lc_instances[0].requests_served > 0
        assert result.weighted_speedup() > 1.0

    def test_name_reflects_ablation(self):
        assert UbikPolicy(boost_enabled=False).name == "Ubik-noboost"


class TestNoDeboost:
    def test_tails_stay_safe(self, runner, spec):
        result = runner.run_mix(spec, UbikPolicy(slack=0.0, deboost_enabled=False))
        assert result.tail_degradation() < 1.05

    def test_batch_throughput_suffers(self, runner, spec, full):
        result = runner.run_mix(spec, UbikPolicy(slack=0.0, deboost_enabled=False))
        assert result.weighted_speedup() <= full.weighted_speedup() + 0.005

    def test_no_deboost_interrupts_fire(self, runner, spec):
        result = runner.run_mix(spec, UbikPolicy(slack=0.0, deboost_enabled=False))
        assert sum(i.deboosts for i in result.lc_instances) == 0


class TestExactBounds:
    def test_exact_bounds_safe_in_engine(self, runner, spec):
        """The engine integrates the exact transients, so sizing with
        exact bounds must still repay by the deadline."""
        result = runner.run_mix(spec, UbikPolicy(slack=0.0, use_exact_bounds=True))
        assert result.tail_degradation() < 1.06

    def test_exact_bounds_at_least_as_aggressive(self):
        """Exact losses <= bounded losses, so the sizing search accepts
        idle sizes at least as small."""
        from repro.core.boost import choose_sizes
        from repro.monitor.miss_curve import MissCurve

        curve = MissCurve(
            [0, 8192, 16384, 32768, 65536], [0.8, 0.45, 0.25, 0.12, 0.08]
        )
        common = dict(
            curve=curve,
            c=20.0,
            M=100.0,
            active_lines=32768.0,
            deadline_cycles=5e6,
            boost_max_lines=65536.0,
            batch_delta_hit_rate=lambda d: d * 1e-6,
            idle_fraction=0.9,
            activation_rate=1e-8,
        )
        paper = choose_sizes(**common)
        exact = choose_sizes(**common, use_exact_bounds=True)
        assert exact.idle_lines <= paper.idle_lines + 1e-9
