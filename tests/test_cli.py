"""Tests for the repro CLI."""

import pytest

from repro.cli import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out
        assert "table3" in out

    def test_fig1b_subset(self, capsys):
        assert main(["fig1b", "--lc", "masstree"]) == 0
        out = capsys.readouterr().out
        assert "masstree" in out
        assert "p95/mean" in out

    def test_fig2_subset(self, capsys):
        assert main(["fig2", "--lc", "shore"]) == 0
        out = capsys.readouterr().out
        assert "shore" in out
        assert "2MB" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["explode"])

    def test_fig1a_runs_small(self, capsys):
        assert main(["fig1a", "--lc", "masstree", "--requests", "40"]) == 0
        out = capsys.readouterr().out
        assert "Tail95" in out

    def test_list_mentions_cache(self, capsys):
        assert main(["list"]) == 0
        assert "cache" in capsys.readouterr().out

    def test_cache_stats_and_clear(self, capsys, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["cache"]) == 0
        out = capsys.readouterr().out
        assert str(tmp_path) in out
        assert main(["cache", "--clear"]) == 0
        assert "cleared 0" in capsys.readouterr().out

    def test_jobs_flag_accepted(self, capsys, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_LC", "masstree")
        monkeypatch.setenv("REPRO_REQUESTS", "40")
        monkeypatch.setenv("REPRO_LOADS", "0.2")
        assert main(["utilization", "--jobs", "1"]) == 0
        out = capsys.readouterr().out
        assert "Utilization" in out

    def test_async_scheduler_matches_serial_and_ticks(
        self, capsys, monkeypatch, tmp_path
    ):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_LC", "masstree")
        monkeypatch.setenv("REPRO_REQUESTS", "40")
        monkeypatch.setenv("REPRO_LOADS", "0.2")
        assert main(["table3", "--scheduler", "async", "--jobs", "2"]) == 0
        captured = capsys.readouterr()
        async_out = captured.out
        assert "Table 3" in async_out
        # The live ticker writes progress events to stderr.
        assert "done" in captured.err
        # A serial re-run is byte-identical and served from the store.
        assert main(["table3", "--jobs", "1"]) == 0
        assert capsys.readouterr().out == async_out

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(SystemExit):
            main(["table3", "--scheduler", "warp"])

    def test_run_command_sharded_matches_unsharded(
        self, capsys, monkeypatch, tmp_path
    ):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        args = [
            "run", "--lc", "masstree", "--load", "0.2", "--combo", "nft",
            "--policy", "ubik", "--slack", "0.05", "--requests", "24",
        ]
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "sharded"))
        assert main(args + ["--shards", "4", "--jobs", "2"]) == 0
        sharded_out = capsys.readouterr().out
        assert "fingerprint" in sharded_out
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "plain"))
        assert main(args + ["--shards", "1"]) == 0
        plain_out = capsys.readouterr().out
        # Same record, same fingerprint; only the shards line and the
        # store path differ between the two reports.
        def field(text, name):
            return [l for l in text.splitlines() if l.startswith(name)][0].split()[-1]

        assert field(sharded_out, "fingerprint") == field(plain_out, "fingerprint")
        sharded_doc = field(sharded_out, "store document")
        plain_doc = field(plain_out, "store document")
        from pathlib import Path

        assert Path(sharded_doc).read_bytes() == Path(plain_doc).read_bytes()

    def test_run_rejects_bad_shards(self):
        with pytest.raises(SystemExit):
            main(["run", "--shards", "warp"])
        with pytest.raises(SystemExit):
            main(["run", "--shards", "0"])

    def test_list_mentions_run(self, capsys):
        assert main(["list"]) == 0
        assert "--shards" in capsys.readouterr().out

    def test_cache_prune(self, capsys, monkeypatch, tmp_path):
        import json

        monkeypatch.delenv("REPRO_STORE", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        stale = tmp_path / "ab" / ("ab" * 32 + ".json")
        stale.parent.mkdir(parents=True)
        stale.write_text(json.dumps({"kind": "run", "schema": 0}))
        assert main(["cache", "--prune"]) == 0
        out = capsys.readouterr().out
        assert "pruned 1" in out
        assert not stale.exists()
