"""Tests for the repro CLI."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent / "runtime"))

from fault_injection import live_server  # noqa: E402

from repro.cli import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out
        assert "table3" in out

    def test_fig1b_subset(self, capsys):
        assert main(["fig1b", "--lc", "masstree"]) == 0
        out = capsys.readouterr().out
        assert "masstree" in out
        assert "p95/mean" in out

    def test_fig2_subset(self, capsys):
        assert main(["fig2", "--lc", "shore"]) == 0
        out = capsys.readouterr().out
        assert "shore" in out
        assert "2MB" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["explode"])

    def test_fig1a_runs_small(self, capsys):
        assert main(["fig1a", "--lc", "masstree", "--requests", "40"]) == 0
        out = capsys.readouterr().out
        assert "Tail95" in out

    def test_list_mentions_cache(self, capsys):
        assert main(["list"]) == 0
        assert "cache" in capsys.readouterr().out

    def test_cache_stats_and_clear(self, capsys, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["cache"]) == 0
        out = capsys.readouterr().out
        assert str(tmp_path) in out
        assert main(["cache", "--clear"]) == 0
        assert "cleared 0" in capsys.readouterr().out

    def test_jobs_flag_accepted(self, capsys, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_LC", "masstree")
        monkeypatch.setenv("REPRO_REQUESTS", "40")
        monkeypatch.setenv("REPRO_LOADS", "0.2")
        assert main(["utilization", "--jobs", "1"]) == 0
        out = capsys.readouterr().out
        assert "Utilization" in out

    def test_async_scheduler_matches_serial_and_ticks(
        self, capsys, monkeypatch, tmp_path
    ):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_LC", "masstree")
        monkeypatch.setenv("REPRO_REQUESTS", "40")
        monkeypatch.setenv("REPRO_LOADS", "0.2")
        assert main(["table3", "--scheduler", "async", "--jobs", "2"]) == 0
        captured = capsys.readouterr()
        async_out = captured.out
        assert "Table 3" in async_out
        # The live ticker writes progress events to stderr.
        assert "done" in captured.err
        # A serial re-run is byte-identical and served from the store.
        assert main(["table3", "--jobs", "1"]) == 0
        assert capsys.readouterr().out == async_out

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(SystemExit):
            main(["table3", "--scheduler", "warp"])

    def test_run_command_sharded_matches_unsharded(
        self, capsys, monkeypatch, tmp_path
    ):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        args = [
            "run", "--lc", "masstree", "--load", "0.2", "--combo", "nft",
            "--policy", "ubik", "--slack", "0.05", "--requests", "24",
        ]
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "sharded"))
        assert main(args + ["--shards", "4", "--jobs", "2"]) == 0
        sharded_out = capsys.readouterr().out
        assert "fingerprint" in sharded_out
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "plain"))
        assert main(args + ["--shards", "1"]) == 0
        plain_out = capsys.readouterr().out
        # Same record, same fingerprint; only the shards line and the
        # store path differ between the two reports.
        def field(text, name):
            return [l for l in text.splitlines() if l.startswith(name)][0].split()[-1]

        assert field(sharded_out, "fingerprint") == field(plain_out, "fingerprint")
        sharded_doc = field(sharded_out, "store document")
        plain_doc = field(plain_out, "store document")
        from pathlib import Path

        assert Path(sharded_doc).read_bytes() == Path(plain_doc).read_bytes()

    def test_run_rejects_bad_shards(self):
        with pytest.raises(SystemExit):
            main(["run", "--shards", "warp"])
        with pytest.raises(SystemExit):
            main(["run", "--shards", "0"])

    def test_list_mentions_run(self, capsys):
        assert main(["list"]) == 0
        assert "--shards" in capsys.readouterr().out

    def test_cache_prune(self, capsys, monkeypatch, tmp_path):
        import json

        monkeypatch.delenv("REPRO_STORE", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        stale = tmp_path / "ab" / ("ab" * 32 + ".json")
        stale.parent.mkdir(parents=True)
        stale.write_text(json.dumps({"kind": "run", "schema": 0}))
        assert main(["cache", "--prune"]) == 0
        out = capsys.readouterr().out
        assert "pruned 1" in out
        assert not stale.exists()


class TestStorageCLI:
    """The --store flag and the cache command's corpus movement."""

    RUN_ARGS = [
        "run",
        "--lc",
        "masstree",
        "--requests",
        "40",
        "--policy",
        "lru",
    ]

    def _field(self, text, name):
        return [
            line for line in text.splitlines() if line.startswith(name)
        ][0].split()[-1]

    def test_run_with_sqlite_store(self, capsys, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        url = f"sqlite://{tmp_path}/store.db"
        assert main(self.RUN_ARGS + ["--store", url]) == 0
        out = capsys.readouterr().out
        assert url in out
        assert (tmp_path / "store.db").exists()
        # Re-running against the same store is a hit on the same record.
        assert main(self.RUN_ARGS + ["--store", url]) == 0
        again = capsys.readouterr().out
        assert self._field(again, "fingerprint") == self._field(
            out, "fingerprint"
        )

    def test_run_store_url_overrides_env(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "ignored"))
        assert (
            main(self.RUN_ARGS + ["--store", str(tmp_path / "chosen")]) == 0
        )
        assert (tmp_path / "chosen").exists()
        assert not (tmp_path / "ignored").exists()

    def test_env_url_selects_backend(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_STORE", f"sqlite://{tmp_path}/env.db")
        assert main(["cache", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "sqlite" in out
        assert "documents" in out

    def test_cache_stats_reports_backend_rows(
        self, capsys, monkeypatch, tmp_path
    ):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(self.RUN_ARGS) == 0
        capsys.readouterr()
        assert main(["cache", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "backend" in out
        assert "directory" in out
        assert "documents" in out
        assert "blobs" in out
        assert "kind: run" in out
        assert "tier 2" in out  # artifact section names the tier

    def test_cache_migrate_and_export(self, capsys, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "origin"))
        assert main(self.RUN_ARGS) == 0
        capsys.readouterr()

        url = f"sqlite://{tmp_path}/migrated.db"
        assert (
            main(["cache", "--migrate", str(tmp_path / "origin"), url]) == 0
        )
        out = capsys.readouterr().out
        assert "migrated" in out
        assert "document(s)" in out

        # Exports from the origin and the migrated copy are identical.
        assert (
            main(
                [
                    "cache",
                    "--store",
                    str(tmp_path / "origin"),
                    "--export",
                    str(tmp_path / "export-origin"),
                ]
            )
            == 0
        )
        assert (
            main(
                [
                    "cache",
                    "--store",
                    url,
                    "--export",
                    str(tmp_path / "export-migrated"),
                ]
            )
            == 0
        )
        capsys.readouterr()
        origin_docs = {
            p.name: p.read_bytes()
            for p in (tmp_path / "export-origin").rglob("*.json")
        }
        migrated_docs = {
            p.name: p.read_bytes()
            for p in (tmp_path / "export-migrated").rglob("*.json")
        }
        assert origin_docs == migrated_docs
        assert origin_docs  # the run produced documents

    def test_cache_clear_on_explicit_store(self, capsys, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        url = f"sqlite://{tmp_path}/store.db"
        assert main(self.RUN_ARGS + ["--store", url]) == 0
        capsys.readouterr()
        assert main(["cache", "--store", url, "--clear"]) == 0
        out = capsys.readouterr().out
        assert "cleared" in out
        assert "cleared 0" not in out

    def test_list_mentions_store(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "--store" in out
        assert "store-serve" in out


class TestStoreServeCLI:
    """``repro store-serve`` and the cache command over the hop."""

    RUN_ARGS = TestStorageCLI.RUN_ARGS

    def test_store_serve_prints_urls_and_exits(
        self, capsys, monkeypatch, tmp_path
    ):
        from repro.runtime.backends.http import StoreHTTPServer

        monkeypatch.setattr(StoreHTTPServer, "serve_forever", lambda self: None)
        url = f"sqlite://{tmp_path}/served.db"
        assert main(["store-serve", "--store", url, "--port", "0"]) == 0
        out = capsys.readouterr().out
        assert f"serving {url} at http://127.0.0.1:" in out

    def test_store_serve_refuses_fronting_http(self, monkeypatch):
        with pytest.raises(ValueError, match="refusing to front"):
            main(["store-serve", "--store", "http://127.0.0.1:9", "--port", "0"])

    def test_run_and_cache_stats_over_http(
        self, capsys, monkeypatch, tmp_path
    ):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        with live_server(f"sqlite://{tmp_path}/served.db") as server:
            assert main(self.RUN_ARGS + ["--store", server.url]) == 0
            capsys.readouterr()
            assert main(["cache", "--store", server.url, "--stats"]) == 0
            out = capsys.readouterr().out
            assert "http" in out
            assert server.url in out
            assert "kind: run" in out

    def test_env_url_reaches_served_store(self, capsys, monkeypatch, tmp_path):
        with live_server(f"sqlite://{tmp_path}/served.db") as server:
            monkeypatch.setenv("REPRO_STORE", server.url)
            assert main(self.RUN_ARGS) == 0
            capsys.readouterr()
            assert main(["cache"]) == 0
            out = capsys.readouterr().out
            assert "http" in out

    def test_cache_migrate_round_trip_through_http(
        self, capsys, monkeypatch, tmp_path
    ):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        origin = f"sqlite://{tmp_path}/origin.db"
        assert main(self.RUN_ARGS + ["--store", origin]) == 0
        capsys.readouterr()
        with live_server(f"sqlite://{tmp_path}/served.db") as server:
            assert main(["cache", "--migrate", origin, server.url]) == 0
            assert "migrated" in capsys.readouterr().out
            back = f"sqlite://{tmp_path}/back.db"
            assert main(["cache", "--migrate", server.url, back]) == 0
            capsys.readouterr()
            for target, label in (
                (origin, "origin"),
                (server.url, "served"),
                (back, "back"),
            ):
                assert (
                    main(
                        [
                            "cache",
                            "--store",
                            target,
                            "--export",
                            str(tmp_path / f"export-{label}"),
                        ]
                    )
                    == 0
                )
        capsys.readouterr()

        def docs(label):
            return {
                p.name: p.read_bytes()
                for p in (tmp_path / f"export-{label}").rglob("*.json")
            }

        assert docs("origin")
        assert docs("served") == docs("origin")
        assert docs("back") == docs("origin")


class TestClusterCLI:
    """``repro cluster-status`` and runs over the ``cluster://`` fabric."""

    RUN_ARGS = TestStorageCLI.RUN_ARGS

    @staticmethod
    def cluster_url(tmp_path):
        return (
            "cluster://replicas=2;"
            f"sqlite://{tmp_path}/n0.db;sqlite://{tmp_path}/n1.db"
        )

    def test_list_mentions_cluster_status(self, capsys):
        assert main(["list"]) == 0
        assert "cluster-status" in capsys.readouterr().out

    def test_run_against_the_fabric(self, capsys, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        url = self.cluster_url(tmp_path)
        assert main(self.RUN_ARGS + ["--store", url]) == 0
        out = capsys.readouterr().out
        assert "cluster://" in out
        # R=2 over 2 nodes: both sqlite files hold the corpus.
        assert (tmp_path / "n0.db").exists()
        assert (tmp_path / "n1.db").exists()

    def test_status_renders_the_node_table(self, capsys, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        url = self.cluster_url(tmp_path)
        assert main(self.RUN_ARGS + ["--store", url]) == 0
        capsys.readouterr()
        assert main(["cluster-status", "--store", url]) == 0
        out = capsys.readouterr().out
        assert "2 node(s), R=2, write quorum 1" in out
        assert "n0.db" in out
        assert "n1.db" in out
        assert out.count("up") >= 2
        assert "closed" in out  # circuits
        assert "write ack(s)" in out  # counters line

    def test_status_repair_flag(self, capsys, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        url = self.cluster_url(tmp_path)
        assert main(["cluster-status", "--store", url, "--repair"]) == 0
        out = capsys.readouterr().out
        assert "replayed 0 queued write(s)" in out
        assert "0 still pending" in out

    def test_status_refuses_non_cluster_store(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        with pytest.raises(SystemExit, match="needs a cluster:// store"):
            main(
                ["cluster-status", "--store", f"sqlite://{tmp_path}/solo.db"]
            )

    def test_env_topology_selects_the_fabric(
        self, capsys, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_STORE", "cluster://")
        monkeypatch.setenv(
            "REPRO_STORE_CLUSTER",
            "replicas=2;"
            f"sqlite://{tmp_path}/e0.db;sqlite://{tmp_path}/e1.db",
        )
        assert main(self.RUN_ARGS) == 0
        capsys.readouterr()
        assert main(["cluster-status"]) == 0
        out = capsys.readouterr().out
        assert "e0.db" in out
        assert "e1.db" in out


class TestBenchCompareCLI:
    def test_compare_two_committed_documents(self, capsys):
        """``bench --compare`` diffs two trajectory documents without
        running any kernel — fast enough for tier-1."""
        perf = Path(__file__).resolve().parents[1] / "benchmarks" / "perf"
        assert (
            main(
                [
                    "bench",
                    "--compare",
                    str(perf / "BENCH_pr7.json"),
                    str(perf / "BENCH_pr9.json"),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "joint_replay_grid" in out
        assert "floor 2.0x" in out
        assert "only in new: cluster_roundtrip" in out

    def test_compare_rejects_invalid_document(self, tmp_path):
        perf = Path(__file__).resolve().parents[1] / "benchmarks" / "perf"
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        with pytest.raises(ValueError, match="old document"):
            main(
                [
                    "bench",
                    "--compare",
                    str(bad),
                    str(perf / "BENCH_pr9.json"),
                ]
            )

    def test_list_mentions_bench(self, capsys):
        assert main(["list"]) == 0
        assert "bench" in capsys.readouterr().out
