"""Tests for repro.monitor.miss_curve."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.monitor.miss_curve import MissCurve, combine_curves


def simple_curve():
    return MissCurve([0, 100, 200, 400], [0.8, 0.4, 0.2, 0.1])


class TestConstruction:
    def test_basic_properties(self):
        curve = simple_curve()
        assert curve.max_size == 400
        assert curve(0) == pytest.approx(0.8)
        assert curve(400) == pytest.approx(0.1)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            MissCurve([0, 1], [0.5])

    def test_rejects_single_point(self):
        with pytest.raises(ValueError):
            MissCurve([0], [0.5])

    def test_rejects_nonzero_start(self):
        with pytest.raises(ValueError):
            MissCurve([1, 2], [0.5, 0.4])

    def test_rejects_unsorted_sizes(self):
        with pytest.raises(ValueError):
            MissCurve([0, 5, 3], [0.5, 0.4, 0.3])

    def test_rejects_duplicate_sizes(self):
        with pytest.raises(ValueError):
            MissCurve([0, 5, 5], [0.5, 0.4, 0.3])

    def test_rejects_out_of_range_ratios(self):
        with pytest.raises(ValueError):
            MissCurve([0, 1], [1.5, 0.4])
        with pytest.raises(ValueError):
            MissCurve([0, 1], [0.5, -0.1])

    def test_enforces_monotonicity_from_noisy_input(self):
        curve = MissCurve([0, 10, 20], [0.5, 0.6, 0.3])
        assert curve(10) <= curve(0)
        assert curve(20) <= curve(10)

    def test_constant_constructor(self):
        curve = MissCurve.constant(0.7, 1000)
        assert curve(0) == pytest.approx(0.7)
        assert curve(500) == pytest.approx(0.7)
        assert curve(1000) == pytest.approx(0.7)


class TestEvaluation:
    def test_linear_interpolation_between_points(self):
        curve = simple_curve()
        assert curve(50) == pytest.approx(0.6)
        assert curve(150) == pytest.approx(0.3)

    def test_clamps_beyond_max_size(self):
        curve = simple_curve()
        assert curve(10_000) == pytest.approx(0.1)

    def test_vectorized_evaluation(self):
        curve = simple_curve()
        values = curve(np.array([0, 100, 200]))
        assert values == pytest.approx([0.8, 0.4, 0.2])

    def test_misses_and_hits(self):
        curve = simple_curve()
        assert curve.misses(100, 1000) == pytest.approx(400)
        assert curve.hits(100, 1000) == pytest.approx(600)

    def test_utility_is_miss_reduction(self):
        curve = simple_curve()
        assert curve.utility(100, 200) == pytest.approx(0.2)

    def test_marginal_utility(self):
        curve = simple_curve()
        assert curve.marginal_utility(100, 200) == pytest.approx(0.2 / 100)

    def test_marginal_utility_rejects_bad_range(self):
        with pytest.raises(ValueError):
            simple_curve().marginal_utility(200, 100)


class TestFromHitCounters:
    def test_ucp_construction(self):
        # 3-way UMON: hits at depths 0,1,2 = 50,30,10; misses 10.
        curve = MissCurve.from_hit_counters([50, 30, 10], 10, lines_per_way=64)
        assert curve(0) == pytest.approx(1.0)
        assert curve(64) == pytest.approx(0.5)
        assert curve(128) == pytest.approx(0.2)
        assert curve(192) == pytest.approx(0.1)

    def test_rejects_negative_counters(self):
        with pytest.raises(ValueError):
            MissCurve.from_hit_counters([5, -1], 2, 64)

    def test_rejects_empty_stream(self):
        with pytest.raises(ValueError):
            MissCurve.from_hit_counters([0, 0], 0, 64)


class TestTransformations:
    def test_resample_preserves_endpoints(self):
        curve = simple_curve().resample(33)
        assert curve.sizes.size == 33
        assert curve(0) == pytest.approx(0.8)
        assert curve(400) == pytest.approx(0.1)

    def test_resample_matches_interpolation(self):
        curve = simple_curve()
        resampled = curve.resample(257)
        for s in (37.0, 123.0, 333.0):
            assert resampled(s) == pytest.approx(curve(s), abs=1e-2)

    def test_resample_rejects_too_few_points(self):
        with pytest.raises(ValueError):
            simple_curve().resample(1)

    def test_scaled(self):
        curve = simple_curve().scaled(0.5)
        assert curve(0) == pytest.approx(0.4)

    def test_scaled_clamps_to_one(self):
        curve = MissCurve([0, 10], [0.9, 0.8]).scaled(2.0)
        assert curve(0) == pytest.approx(1.0)

    def test_with_noise_stays_valid(self):
        rng = np.random.default_rng(0)
        noisy = simple_curve().with_noise(rng, 0.05)
        assert np.all(noisy.miss_ratios >= 0)
        assert np.all(noisy.miss_ratios <= 1)
        assert np.all(np.diff(noisy.miss_ratios) <= 1e-12)

    def test_equality(self):
        assert simple_curve() == simple_curve()
        assert simple_curve() != MissCurve([0, 1], [0.5, 0.4])

    def test_repr_mentions_points(self):
        assert "4 pts" in repr(simple_curve())


class TestCombineCurves:
    def test_single_curve_identity_weighting(self):
        curve = simple_curve()
        combined = combine_curves([curve], [1.0])
        assert combined(200) == pytest.approx(curve(200), abs=0.02)

    def test_weights_validation(self):
        with pytest.raises(ValueError):
            combine_curves([simple_curve()], [1.0, 2.0])
        with pytest.raises(ValueError):
            combine_curves([], [])
        with pytest.raises(ValueError):
            combine_curves([simple_curve()], [0.0])

    def test_heavier_app_dominates(self):
        low = MissCurve.constant(0.1, 400)
        high = MissCurve.constant(0.9, 400)
        combined = combine_curves([low, high], [1.0, 9.0])
        assert combined(200) > 0.7


@settings(max_examples=50, deadline=None)
@given(
    ratios=st.lists(
        st.floats(min_value=0.0, max_value=1.0), min_size=2, max_size=20
    ),
    query=st.floats(min_value=0.0, max_value=1.0),
)
def test_property_interpolation_bounded_and_monotone(ratios, query):
    sizes = np.arange(len(ratios), dtype=float) * 10
    curve = MissCurve(sizes, ratios)
    value = float(curve(query * curve.max_size))
    assert 0.0 <= value <= 1.0
    # Monotone: larger allocations never miss more.
    bigger = float(curve(min(query * curve.max_size + 5, curve.max_size)))
    assert bigger <= value + 1e-12


@settings(max_examples=50, deadline=None)
@given(
    hits=st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=32),
    misses=st.integers(min_value=1, max_value=1000),
)
def test_property_hit_counter_curve_endpoints(hits, misses):
    curve = MissCurve.from_hit_counters(hits, misses, 64)
    total = sum(hits) + misses
    assert curve(0) == pytest.approx(1.0 if total == misses + sum(hits) else 1.0)
    assert curve(curve.max_size) == pytest.approx(misses / total)


class TestPickling:
    """Curves pickle to process-pool workers; the read-only contract
    and view/backing-array aliasing must survive the round trip."""

    def test_round_trip_preserves_readonly_views(self):
        import pickle

        curve = MissCurve([0.0, 10.0, 20.0], [1.0, 0.5, 0.2])
        loaded = pickle.loads(pickle.dumps(curve))
        assert loaded == curve
        assert not loaded.sizes.flags.writeable
        assert not loaded.miss_ratios.flags.writeable
        with pytest.raises(ValueError):
            loaded.sizes[0] = 99.0
        # The views alias the backing arrays, not detached copies.
        assert loaded.sizes.base is loaded._sizes
        assert loaded.miss_ratios.base is loaded._ratios
