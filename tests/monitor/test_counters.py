"""Tests for repro.monitor.counters."""

import pytest

from repro.monitor.counters import PerfCounters


class TestPerfCounters:
    def test_accumulation(self):
        counters = PerfCounters()
        counters.add(cycles=100, instructions=150, accesses=10, misses=2)
        counters.add(cycles=100, instructions=150, accesses=10, misses=2)
        assert counters.cycles == 200
        assert counters.misses == 4

    def test_derived_metrics(self):
        counters = PerfCounters(
            cycles=1000, instructions=1500, accesses=7.5, misses=0.75
        )
        assert counters.ipc == pytest.approx(1.5)
        assert counters.apki == pytest.approx(5.0)
        assert counters.miss_ratio == pytest.approx(0.1)

    def test_paper_worked_example(self):
        # Section 5.1: IPC=1.5, 5 APKI, 10% miss, M=100 -> Taccess=133, c=123.
        counters = PerfCounters(
            cycles=1000.0 / 1.5, instructions=1000, accesses=5, misses=0.5
        )
        assert counters.access_interval() == pytest.approx(133.33, rel=0.01)
        assert counters.hit_interval(100.0) == pytest.approx(123.33, rel=0.01)

    def test_reset(self):
        counters = PerfCounters(cycles=10, instructions=10, accesses=5, misses=1)
        counters.reset()
        assert counters.cycles == 0
        assert counters.ipc == 0

    def test_merge(self):
        a = PerfCounters(cycles=10, instructions=20, accesses=2, misses=1)
        b = PerfCounters(cycles=30, instructions=40, accesses=4, misses=2)
        merged = a.merge(b)
        assert merged.cycles == 40
        assert merged.misses == 3
        assert a.cycles == 10  # inputs untouched

    def test_rejects_negative_increments(self):
        counters = PerfCounters()
        with pytest.raises(ValueError):
            counters.add(cycles=-1)

    def test_rejects_misses_exceeding_accesses(self):
        counters = PerfCounters()
        with pytest.raises(ValueError):
            counters.add(accesses=1, misses=2)

    def test_empty_counters_safe(self):
        counters = PerfCounters()
        assert counters.ipc == 0
        assert counters.apki == 0
        assert counters.miss_ratio == 0
        assert counters.access_interval() == float("inf")
        assert counters.hit_interval(100.0) == float("inf")

    def test_hit_interval_floor_at_zero(self):
        # Pathological: penalty larger than the measured interval.
        counters = PerfCounters(cycles=10, instructions=10, accesses=10, misses=10)
        assert counters.hit_interval(1000.0) == 0.0

    def test_hit_interval_rejects_negative_penalty(self):
        counters = PerfCounters(cycles=10, instructions=10, accesses=10, misses=1)
        with pytest.raises(ValueError):
            counters.hit_interval(-1.0)
