"""Tests for repro.monitor.mlp."""

import pytest

from repro.monitor.mlp import MLPProfiler


class TestMLPProfiler:
    def test_initial_estimate(self):
        profiler = MLPProfiler(initial_penalty=200.0)
        assert profiler.effective_penalty == pytest.approx(200.0)

    def test_converges_to_observed_penalty(self):
        profiler = MLPProfiler(smoothing=0.5, initial_penalty=200.0)
        for _ in range(20):
            profiler.observe(stall_cycles=1000.0, misses=10.0)
            profiler.end_interval()
        assert profiler.effective_penalty == pytest.approx(100.0, rel=0.01)

    def test_window_accumulates_before_interval_end(self):
        profiler = MLPProfiler(smoothing=1.0, initial_penalty=200.0)
        profiler.observe(500.0, 5.0)
        profiler.observe(500.0, 5.0)
        assert profiler.end_interval() == pytest.approx(100.0)

    def test_empty_interval_keeps_estimate(self):
        profiler = MLPProfiler(initial_penalty=150.0)
        assert profiler.end_interval() == pytest.approx(150.0)

    def test_observe_overlap_divides_latency(self):
        profiler = MLPProfiler(smoothing=1.0, initial_penalty=200.0)
        profiler.observe_overlap(raw_latency=200.0, concurrent=4.0)
        assert profiler.end_interval() == pytest.approx(50.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            MLPProfiler(smoothing=0.0)
        with pytest.raises(ValueError):
            MLPProfiler(smoothing=1.5)
        with pytest.raises(ValueError):
            MLPProfiler(initial_penalty=0.0)
        profiler = MLPProfiler()
        with pytest.raises(ValueError):
            profiler.observe(-1.0, 1.0)
        with pytest.raises(ValueError):
            profiler.observe_overlap(100.0, 0.5)

    def test_smoothing_limits_adaptation_speed(self):
        fast = MLPProfiler(smoothing=1.0, initial_penalty=200.0)
        slow = MLPProfiler(smoothing=0.1, initial_penalty=200.0)
        for profiler in (fast, slow):
            profiler.observe(100.0, 10.0)  # sample penalty 10
            profiler.end_interval()
        assert fast.effective_penalty == pytest.approx(10.0)
        assert slow.effective_penalty > 150.0
