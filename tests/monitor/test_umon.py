"""Tests for repro.monitor.umon."""

import numpy as np
import pytest

from repro.monitor.umon import UtilityMonitor


def feed_working_set(umon, lines, passes=8, offset=0):
    """Loop over a working set of `lines` addresses."""
    for _ in range(passes):
        for addr in range(offset, offset + lines):
            umon.observe(addr)


class TestSampling:
    def test_only_sampled_addresses_counted(self):
        umon = UtilityMonitor(ways=4, sets=2, sample_shift=4, lines_per_way=8)
        feed_working_set(umon, 256, passes=2)
        # 1/16 sampling: roughly 32 of 512 accesses observed.
        assert 0 < umon.sampled < 512

    def test_sample_shift_zero_samples_everything(self):
        umon = UtilityMonitor(ways=4, sets=2, sample_shift=0, lines_per_way=8)
        feed_working_set(umon, 16, passes=1)
        assert umon.sampled == 16

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            UtilityMonitor(ways=0)
        with pytest.raises(ValueError):
            UtilityMonitor(sets=0)
        with pytest.raises(ValueError):
            UtilityMonitor(sample_shift=-1)
        with pytest.raises(ValueError):
            UtilityMonitor(lines_per_way=0)


class TestMissCurve:
    def test_small_working_set_hits_at_small_allocations(self):
        umon = UtilityMonitor(ways=8, sets=1, sample_shift=0, lines_per_way=4)
        feed_working_set(umon, 4, passes=50)
        curve = umon.miss_curve(points=33)
        # Working set of 4 lines fits in one monitored way's worth.
        assert curve(32) < 0.1

    def test_streaming_never_hits(self):
        umon = UtilityMonitor(ways=4, sets=1, sample_shift=0, lines_per_way=4)
        for addr in range(2000):
            umon.observe(addr)
        curve = umon.miss_curve(points=17)
        assert curve(16) > 0.95

    def test_curve_requires_samples(self):
        umon = UtilityMonitor()
        with pytest.raises(RuntimeError):
            umon.miss_curve()

    def test_curve_monotone(self):
        umon = UtilityMonitor(ways=8, sets=2, sample_shift=0, lines_per_way=16)
        rng = np.random.default_rng(1)
        zipf_like = rng.integers(0, 40, size=4000) ** 2 % 64
        umon.observe_many(zipf_like)
        curve = umon.miss_curve(points=65)
        assert np.all(np.diff(curve.miss_ratios) <= 1e-12)

    def test_reset_clears_counters_keeps_tags(self):
        umon = UtilityMonitor(ways=4, sets=1, sample_shift=0, lines_per_way=4)
        feed_working_set(umon, 4, passes=10)
        umon.reset()
        assert umon.sampled == 0
        assert umon.miss_count == 0
        # Tags persist: next pass over the same set hits immediately.
        feed_working_set(umon, 4, passes=1)
        assert umon.way_hits.sum() == 4


class TestDeBoostCounters:
    def test_would_have_missed_counts_deep_hits(self):
        umon = UtilityMonitor(ways=4, sets=1, sample_shift=0, lines_per_way=10)
        # Warm 4 lines, mark, then access them in LRU order so each
        # hit lands at depth 3 (the deepest way).
        for addr in range(4):
            umon.observe(addr)
        umon.mark()
        for addr in range(4):
            umon.observe(addr)
        # With only 1 way's allocation (10 lines), depth-3 hits would
        # have been misses.
        assert umon.would_have_missed(10) > 0
        # With the full allocation, nothing extra would have missed.
        assert umon.would_have_missed(40) == 0

    def test_misses_since_mark(self):
        umon = UtilityMonitor(ways=2, sets=1, sample_shift=0, lines_per_way=4)
        umon.observe(0)
        umon.mark()
        umon.observe(1)
        umon.observe(2)
        assert umon.misses_since_mark() == 2
