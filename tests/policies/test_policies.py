"""Tests for the baseline policies (LRU, UCP, StaticLC, OnOff, Fixed)."""

import numpy as np
import pytest

from repro.monitor.miss_curve import MissCurve
from repro.policies.base import AppView, BoostPlan, Decision, PolicyContext
from repro.policies.fixed import FixedPolicy
from repro.policies.lru import LRUPolicy
from repro.policies.onoff import OnOffPolicy
from repro.policies.static_lc import StaticLCPolicy
from repro.policies.ucp import UCPPolicy

LLC = 1000


def make_view(index, kind, miss0=0.8, floor=0.1, access_rate=0.01, target=200.0):
    curve = MissCurve([0, LLC], [miss0, floor])
    return AppView(
        index=index,
        name=f"app{index}",
        kind=kind,
        curve=curve,
        apki=5.0,
        hit_interval=100.0,
        miss_penalty=100.0,
        access_rate=access_rate,
        target_lines=target if kind == "lc" else 0.0,
        deadline_cycles=1e6 if kind == "lc" else 0.0,
        target_tail_cycles=1e6 if kind == "lc" else 0.0,
    )


def make_ctx(apps, active=None, targets=None):
    return PolicyContext(
        llc_lines=LLC,
        apps=apps,
        current_targets=targets or {a.index: 0.0 for a in apps},
        now=0.0,
        avg_batch_lines=600.0,
        lc_active=active or {a.index: False for a in apps if a.is_lc},
        rng=np.random.default_rng(0),
        lc_boosted={a.index: False for a in apps if a.is_lc},
    )


@pytest.fixture
def mixed_ctx():
    apps = [
        make_view(0, "lc"),
        make_view(1, "lc"),
        make_view(2, "batch", access_rate=0.02),
        make_view(3, "batch", access_rate=0.01),
    ]
    return make_ctx(apps)


class TestBaseTypes:
    def test_appview_kind_validation(self):
        with pytest.raises(ValueError):
            make_view(0, "gpu")

    def test_boost_plan_validation(self):
        with pytest.raises(ValueError):
            BoostPlan(boost_lines=100, active_lines=200)
        with pytest.raises(ValueError):
            BoostPlan(boost_lines=300, active_lines=200, guard_fraction=-1)
        with pytest.raises(ValueError):
            BoostPlan(boost_lines=300, active_lines=200, watermark_factor=0.5)

    def test_decision_merge(self):
        decision = Decision(targets={0: 100.0})
        merged = decision.merged_over({0: 50.0, 1: 75.0})
        assert merged == {0: 100.0, 1: 75.0}

    def test_ctx_accessors(self, mixed_ctx):
        assert [a.index for a in mixed_ctx.lc_apps] == [0, 1]
        assert [a.index for a in mixed_ctx.batch_apps] == [2, 3]
        assert mixed_ctx.app(2).index == 2
        with pytest.raises(KeyError):
            mixed_ctx.app(9)


class TestLRU:
    def test_no_partitioning(self):
        assert LRUPolicy.uses_partitioning is False

    def test_initialize_reports_even_split(self, mixed_ctx):
        decision = LRUPolicy().initialize(mixed_ctx)
        assert sum(decision.targets.values()) == pytest.approx(LLC)


class TestUCP:
    def test_partitions_everything(self, mixed_ctx):
        decision = UCPPolicy().initialize(mixed_ctx)
        assert set(decision.targets) == {0, 1, 2, 3}
        assert sum(decision.targets.values()) == pytest.approx(LLC)

    def test_idle_lc_apps_lose_space(self):
        """The bias the paper criticizes: low average access rate ->
        low utility -> small partition."""
        apps = [
            make_view(0, "lc", access_rate=0.0001),  # idle most of the time
            make_view(1, "batch", access_rate=0.05),
        ]
        decision = UCPPolicy().initialize(make_ctx(apps))
        assert decision.targets[1] > decision.targets[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            UCPPolicy(buckets=0)


class TestStaticLC:
    def test_lc_pinned_at_target(self, mixed_ctx):
        decision = StaticLCPolicy().initialize(mixed_ctx)
        assert decision.targets[0] == 200.0
        assert decision.targets[1] == 200.0

    def test_batch_shares_remainder(self, mixed_ctx):
        decision = StaticLCPolicy().initialize(mixed_ctx)
        batch_total = decision.targets[2] + decision.targets[3]
        assert batch_total == pytest.approx(LLC - 400.0)

    def test_interval_is_stable_for_lc(self, mixed_ctx):
        policy = StaticLCPolicy()
        first = policy.initialize(mixed_ctx)
        second = policy.on_interval(mixed_ctx)
        assert second.targets[0] == first.targets[0] == 200.0


class TestOnOff:
    def test_idle_lc_gets_nothing(self, mixed_ctx):
        decision = OnOffPolicy().initialize(mixed_ctx)
        assert decision.targets[0] == 0.0
        assert decision.targets[1] == 0.0

    def test_active_lc_gets_full_target(self):
        apps = [
            make_view(0, "lc"),
            make_view(1, "lc"),
            make_view(2, "batch", access_rate=0.02),
        ]
        ctx = make_ctx(apps, active={0: True, 1: False})
        policy = OnOffPolicy()
        policy.initialize(ctx)
        decision = policy.on_lc_active(ctx, 0)
        assert decision.targets[0] == 200.0
        assert decision.targets[1] == 0.0

    def test_batch_absorbs_idle_space(self):
        apps = [make_view(0, "lc"), make_view(1, "batch", access_rate=0.02)]
        policy = OnOffPolicy()
        idle_ctx = make_ctx(apps, active={0: False})
        policy.initialize(idle_ctx)
        idle_decision = policy.on_lc_idle(idle_ctx, 0)
        active_ctx = make_ctx(apps, active={0: True})
        policy._precompute(active_ctx)
        active_decision = policy.on_lc_active(active_ctx, 0)
        assert idle_decision.targets[1] > active_decision.targets[1]

    def test_rows_cover_all_activity_levels(self, mixed_ctx):
        policy = OnOffPolicy()
        policy.initialize(mixed_ctx)
        assert set(policy._rows) == {0, 1, 2}


class TestFixed:
    def test_explicit_targets(self, mixed_ctx):
        policy = FixedPolicy({0: 123.0, 1: 45.0})
        decision = policy.initialize(mixed_ctx)
        assert decision.targets == {0: 123.0, 1: 45.0}

    def test_unknown_app_rejected(self, mixed_ctx):
        with pytest.raises(ValueError):
            FixedPolicy({99: 1.0}).initialize(mixed_ctx)

    def test_default_layout(self, mixed_ctx):
        decision = FixedPolicy().initialize(mixed_ctx)
        assert decision.targets[0] == 200.0
        assert decision.targets[2] == pytest.approx((LLC - 400) / 2)
