"""Tests for repro.policies.lookahead (UCP's allocation algorithm)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.monitor.miss_curve import MissCurve
from repro.policies.lookahead import lookahead_partition


def curve(points):
    sizes, ratios = zip(*points)
    return MissCurve(sizes, ratios)


class TestAllocation:
    def test_single_app_gets_everything(self):
        c = curve([(0, 0.9), (100, 0.1)])
        allocs = lookahead_partition([c], [1.0], 100, buckets=10)
        assert allocs == [100.0]

    def test_useful_app_beats_streaming(self):
        useful = curve([(0, 0.9), (100, 0.05)])
        streaming = MissCurve.constant(0.95, 100)
        allocs = lookahead_partition([useful, streaming], [1.0, 1.0], 100, buckets=20)
        assert allocs[0] > allocs[1]

    def test_weights_shift_allocation(self):
        a = curve([(0, 0.8), (100, 0.2)])
        b = curve([(0, 0.8), (100, 0.2)])
        light = lookahead_partition([a, b], [1.0, 10.0], 100, buckets=20)
        assert light[1] > light[0]

    def test_sees_past_plateaus(self):
        """The lookahead property: a knee beyond a flat region is found,
        which pure hill-climbing would miss."""
        kneed = curve([(0, 0.9), (50, 0.9), (60, 0.1), (100, 0.1)])
        mild = curve([(0, 0.5), (100, 0.45)])
        allocs = lookahead_partition([kneed, mild], [1.0, 1.0], 100, buckets=20)
        assert allocs[0] >= 60.0

    def test_budget_fully_distributed(self):
        apps = [MissCurve.constant(0.5, 100) for _ in range(3)]
        allocs = lookahead_partition(apps, [1.0, 1.0, 1.0], 90, buckets=9)
        assert sum(allocs) == pytest.approx(90.0)

    def test_min_buckets_respected(self):
        a = curve([(0, 0.9), (100, 0.1)])
        b = MissCurve.constant(0.9, 100)
        allocs = lookahead_partition(
            [a, b], [1.0, 1.0], 100, buckets=10, min_buckets=[0, 3]
        )
        assert allocs[1] >= 30.0

    def test_empty_inputs(self):
        assert lookahead_partition([], [], 100) == []

    def test_zero_budget(self):
        c = curve([(0, 0.9), (100, 0.1)])
        assert lookahead_partition([c], [1.0], 0, buckets=10) == [0.0]

    def test_validation(self):
        c = curve([(0, 0.9), (100, 0.1)])
        with pytest.raises(ValueError):
            lookahead_partition([c], [1.0, 2.0], 100)
        with pytest.raises(ValueError):
            lookahead_partition([c], [-1.0], 100)
        with pytest.raises(ValueError):
            lookahead_partition([c], [1.0], -5)
        with pytest.raises(ValueError):
            lookahead_partition([c], [1.0], 100, buckets=0)
        with pytest.raises(ValueError):
            lookahead_partition([c], [1.0], 100, buckets=10, min_buckets=[20])
        with pytest.raises(ValueError):
            lookahead_partition([c], [1.0], 100, buckets=10, min_buckets=[-1])


class TestOptimality:
    def test_matches_exhaustive_on_small_instance(self):
        """Greedy lookahead is near-optimal on convex-ish instances."""
        a = curve([(0, 0.8), (40, 0.4), (100, 0.1)])
        b = curve([(0, 0.6), (60, 0.2), (100, 0.15)])
        weights = [2.0, 1.0]
        buckets = 10
        allocs = lookahead_partition([a, b], weights, 100, buckets=buckets)

        def objective(x):
            return weights[0] * float(a(x)) + weights[1] * float(b(100 - x))

        best = min(objective(k * 10) for k in range(buckets + 1))
        got = objective(allocs[0])
        assert got <= best + 1e-9


@settings(max_examples=40, deadline=None)
@given(
    num_apps=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_property_allocations_valid(num_apps, seed):
    rng = np.random.default_rng(seed)
    curves = []
    for _ in range(num_apps):
        ratios = np.sort(rng.uniform(0, 1, size=5))[::-1]
        curves.append(MissCurve(np.arange(5) * 25.0, ratios))
    weights = rng.uniform(0.1, 10, size=num_apps)
    allocs = lookahead_partition(curves, weights, 100, buckets=20)
    assert len(allocs) == num_apps
    assert all(a >= 0 for a in allocs)
    assert sum(allocs) <= 100 + 1e-9
    assert sum(allocs) == pytest.approx(100.0)  # fully distributed
