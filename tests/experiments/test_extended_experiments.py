"""Tiny-scale tests for the sensitivity, ablation and extension experiments."""

import pytest

from repro.experiments.ablations import run_ablations
from repro.experiments.bandwidth_study import run_bandwidth_study
from repro.experiments.common import ExperimentScale
from repro.experiments.fig12_slack import run_fig12
from repro.experiments.fig13_schemes import run_fig13
from repro.experiments.scaleout import run_scaleout

TINY = ExperimentScale(
    requests=60,
    lc_names=("shore",),
    loads=(0.2,),
    combos=("nft",),
    mixes_per_combo=1,
)


class TestFig12Module:
    def test_entries_cover_slacks(self):
        entries = run_fig12(TINY, slacks=(0.0, 0.05))
        slacks = {e.slack for e in entries}
        assert slacks == {0.0, 0.05}
        for e in entries:
            assert e.worst_degradation >= e.average_degradation - 1e-9

    def test_strict_is_safe(self):
        entries = run_fig12(TINY, slacks=(0.0,))
        assert all(e.worst_degradation < 1.1 for e in entries)


class TestFig13Module:
    def test_five_schemes_reported(self):
        entries = run_fig13(TINY)
        schemes = {e.scheme for e in entries}
        assert schemes == {
            "WayPart SA16",
            "WayPart SA64",
            "Vantage SA16",
            "Vantage SA64",
            "Vantage Z4/52",
        }

    def test_zcache_at_least_as_safe_as_waypart16(self):
        entries = run_fig13(TINY)

        def worst(name):
            return max(e.worst_degradation for e in entries if e.scheme == name)

        assert worst("Vantage Z4/52") <= worst("WayPart SA16") + 1e-9


class TestAblationsModule:
    def test_four_variants(self):
        entries = run_ablations(TINY)
        variants = {e.variant for e in entries}
        assert variants == {"Ubik", "Ubik-noboost", "Ubik-nodeboost", "Ubik-exact"}

    def test_all_variants_complete(self):
        entries = run_ablations(TINY)
        assert all(e.average_speedup_pct > -50 for e in entries)
        assert all(e.worst_degradation > 0.5 for e in entries)


class TestScaleOutModule:
    def test_guarantees_scale(self):
        results = run_scaleout(core_counts=(6,), requests=60)
        by_policy = {r.policy: r for r in results}
        assert by_policy["StaticLC"].tail_degradation < 1.05
        assert by_policy["Ubik-5%"].tail_degradation < 1.10

    def test_odd_core_count_rejected(self):
        with pytest.raises(ValueError):
            run_scaleout(core_counts=(7,), requests=60)

    def test_rides_the_result_store(self, tmp_path):
        from repro.runtime import ResultStore, Session

        first = run_scaleout(
            core_counts=(6,),
            requests=60,
            session=Session(store=ResultStore(tmp_path)),
        )
        store = ResultStore(tmp_path)
        stats = store.stats()
        assert stats["by_kind"]["scaleout"] == 2
        assert stats["by_kind"]["scaleout_baseline"] == 1
        again = run_scaleout(
            core_counts=(6,), requests=60, session=Session(store=store)
        )
        assert again == first


class TestBandwidthModule:
    def test_monotone_degradation(self):
        points = run_bandwidth_study(
            peaks=(1e9, 90.0), requests=60, lc_name="specjbb"
        )
        by_policy = {}
        for p in points:
            by_policy.setdefault(p.policy, []).append(p.tail_degradation)
        for policy, tails in by_policy.items():
            assert tails[1] >= tails[0] - 0.02, policy

    def test_rides_the_result_store(self, tmp_path):
        from repro.runtime import ResultStore, Session

        first = run_bandwidth_study(
            peaks=(1e9,),
            requests=60,
            session=Session(store=ResultStore(tmp_path)),
        )
        store = ResultStore(tmp_path)
        stats = store.stats()
        assert stats["by_kind"]["bandwidth"] == 2
        assert stats["by_kind"]["baseline"] == 1
        again = run_bandwidth_study(
            peaks=(1e9,), requests=60, session=Session(store=store)
        )
        assert again == first


class TestEnginesRetiredFromExperiments:
    """Scaleout and bandwidth are declarative now: the experiment
    modules build specs and hand them to the session; only the sim
    layer (``repro.sim.study_runner``) drives ``MixEngine``."""

    @pytest.mark.parametrize(
        "module", ["scaleout", "bandwidth_study"]
    )
    def test_no_direct_mix_engine(self, module):
        import inspect
        import importlib

        source = inspect.getsource(
            importlib.import_module(f"repro.experiments.{module}")
        )
        assert "MixEngine" not in source
        assert "TaskSpec" in source
