"""Tests for the environment-variable scale knobs."""

import pytest

from repro.experiments.common import default_scale
from repro.workloads.latency_critical import LC_NAMES


class TestDefaultScale:
    def test_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_REQUESTS", raising=False)
        monkeypatch.delenv("REPRO_LC", raising=False)
        monkeypatch.delenv("REPRO_MIXES", raising=False)
        monkeypatch.delenv("REPRO_LOADS", raising=False)
        scale = default_scale()
        assert scale.requests == 120
        assert scale.lc_names == LC_NAMES
        assert len(scale.combos) == 6  # representative subset
        assert scale.loads == (0.2, 0.6)

    def test_requests_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_REQUESTS", "300")
        assert default_scale().requests == 300

    def test_lc_subset(self, monkeypatch):
        monkeypatch.setenv("REPRO_LC", "shore,specjbb")
        assert default_scale().lc_names == ("shore", "specjbb")

    def test_full_grid_via_mixes(self, monkeypatch):
        monkeypatch.setenv("REPRO_MIXES", "2")
        scale = default_scale()
        assert len(scale.combos) == 20  # the paper's full combo grid
        assert scale.mixes_per_combo == 2

    def test_invalid_lc_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_LC", "redis")
        with pytest.raises(ValueError):
            default_scale()

    def test_loads_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOADS", "0.2")
        assert default_scale().loads == (0.2,)

    def test_loads_override_in_full_grid(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOADS", "0.3,0.7")
        monkeypatch.setenv("REPRO_MIXES", "1")
        scale = default_scale()
        assert scale.loads == (0.3, 0.7)
        assert len(scale.combos) == 20
