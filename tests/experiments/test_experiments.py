"""Tests for the experiment modules (small scales)."""

import numpy as np
import pytest

from repro.experiments.common import (
    ExperimentScale,
    format_table,
    scaled_mix_specs,
)
from repro.experiments.fig1_load_latency import load_latency_curve
from repro.experiments.fig1b_service_cdf import run_fig1b, service_time_cdf
from repro.experiments.fig2_reuse import reuse_breakdown
from repro.experiments.sweep import run_policy_sweep
from repro.experiments.utilization import run_utilization
from repro.core.ubik import UbikPolicy
from repro.policies.static_lc import StaticLCPolicy

TINY = ExperimentScale(
    requests=60,
    lc_names=("masstree",),
    loads=(0.2,),
    combos=("nft",),
    mixes_per_combo=1,
)


class TestScale:
    def test_default_grid_size(self):
        scale = ExperimentScale()
        specs = scaled_mix_specs(scale)
        # 5 LC x 2 loads x 6 combos x 1 mix = 60
        assert len(specs) == 60

    def test_combo_filter(self):
        specs = scaled_mix_specs(TINY)
        assert len(specs) == 1
        assert specs[0].batch_combo.startswith("nft")

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentScale(requests=5)
        with pytest.raises(ValueError):
            ExperimentScale(lc_names=("redis",))

    def test_format_table(self):
        text = format_table(["a", "b"], [[1, 2], [3, 4]], title="T")
        assert "T" in text
        assert "3" in text


class TestFig1:
    def test_load_latency_monotone(self):
        points = load_latency_curve("masstree", loads=(0.2, 0.6), requests=80)
        assert points[1].tail95_ms > points[0].tail95_ms
        assert all(p.tail95_ms > p.mean_ms for p in points)

    def test_service_cdf_shape(self):
        cdf = service_time_cdf("xapian")
        assert cdf.value_at(0.0) == pytest.approx(0.0, abs=0.01)
        assert cdf.value_at(cdf.grid_ms[-1]) > 0.99
        assert cdf.p95_ms > cdf.mean_ms

    def test_run_fig1b_all_apps(self):
        cdfs = run_fig1b(["masstree", "shore"])
        assert set(cdfs) == {"masstree", "shore"}
        # masstree near-constant vs shore multi-modal.
        assert (
            cdfs["masstree"].p95_ms / cdfs["masstree"].mean_ms
            < cdfs["shore"].p95_ms / cdfs["shore"].mean_ms
        )


class TestFig2:
    def test_inertia_signature(self):
        r = reuse_breakdown("specjbb", 2.0, num_requests=48)
        assert sum(r.hit_fractions) + r.miss_fraction == pytest.approx(1.0)
        assert r.cross_request_hit_fraction > 0.3

    def test_bigger_cache_less_misses_more_reuse(self):
        r2 = reuse_breakdown("shore", 2.0, num_requests=48)
        r8 = reuse_breakdown("shore", 8.0, num_requests=48)
        assert r8.miss_fraction < r2.miss_fraction
        assert r8.cross_request_hit_fraction >= r2.cross_request_hit_fraction


class TestSweep:
    def test_sweep_records_and_cache(self):
        factories = (
            ("StaticLC", StaticLCPolicy),
            ("Ubik", lambda: UbikPolicy(slack=0.05)),
        )
        sweep = run_policy_sweep(TINY, policy_factories=factories)
        assert len(sweep.records) == 2  # 1 spec x 2 policies
        again = run_policy_sweep(TINY, policy_factories=factories)
        assert again is sweep  # memoized

    def test_sweep_accessors(self):
        factories = (("StaticLC", StaticLCPolicy),)
        sweep = run_policy_sweep(TINY, policy_factories=factories)
        assert sweep.policies() == ["StaticLC"]
        degr = sweep.sorted_degradations("StaticLC", "lo")
        assert degr.size == 1
        assert np.isfinite(sweep.average_speedup("StaticLC", "lo"))

    def test_utilization_estimates(self):
        estimates = run_utilization(TINY)
        # LRU pinned at the paper's 10%; partitioned schemes higher
        # when safe.
        if "LRU" in estimates:
            assert estimates["LRU"].utilization == pytest.approx(0.10)
