"""Tests for repro.bench: the tracked benchmark harness + schema gate."""

import json

import pytest

from repro.bench import (
    BENCH_SCHEMA,
    BENCH_SCHEMA_V1,
    BENCH_SCHEMA_V4,
    KERNEL_NAMES,
    LEGACY_KERNEL_NAMES,
    STORE_BACKEND_NAMES,
    default_bench_path,
    format_bench,
    run_bench,
    validate_bench,
    write_bench,
)


@pytest.fixture(scope="module")
def quick_payload():
    """One real quick run shared by the module (kernels are not free)."""
    return run_bench(quick=True, repeats=1)


class TestRunBench:
    def test_document_shape(self, quick_payload):
        assert quick_payload["schema"] == BENCH_SCHEMA
        assert quick_payload["quick"] is True
        assert set(KERNEL_NAMES) <= set(quick_payload["kernels"])
        for name in KERNEL_NAMES:
            entry = quick_payload["kernels"][name]
            assert entry["seconds"] > 0
            assert entry["seconds"] == min(entry["runs"])
            assert entry["units"] > 0
            assert entry["ns_per_unit"] > 0

    @pytest.mark.parametrize(
        "kernel",
        [
            "trace_replay",
            "warm_sweep_grid",
            "stream_synthesis",
            "joint_replay_grid",
            "lockstep_replay",
        ],
    )
    def test_compared_kernels_record_baseline_and_speedup(
        self, quick_payload, kernel
    ):
        entry = quick_payload["kernels"][kernel]
        assert entry["verified_identical"] is True
        assert entry["baseline_seconds"] > 0
        assert entry["speedup"] == pytest.approx(
            entry["baseline_seconds"] / entry["seconds"]
        )
        # No timing floor here: tier-1 must never flake on machine
        # noise (coverage tracing, loaded CI boxes).  The >=3x replay
        # and >=2x warm-grid acceptances live in
        # test_committed_trajectory_validates, pinned against the
        # committed BENCH_pr4.json / BENCH_pr5.json documents.
        assert entry["speedup"] > 0

    def test_validates_clean(self, quick_payload):
        assert validate_bench(quick_payload) == []

    def test_store_kernel_times_every_engine_with_percentiles(
        self, quick_payload
    ):
        """The v5 generation's per-backend kernel covers all four
        engines — including http against a live served store — with
        tail percentiles per operation."""
        backends = quick_payload["kernels"]["store_backend_roundtrip"][
            "backends"
        ]
        assert set(STORE_BACKEND_NAMES) <= set(backends)
        for name in STORE_BACKEND_NAMES:
            for op in ("put", "get"):
                stats = backends[name][op]
                assert (
                    0
                    < stats["p50_ns"]
                    <= stats["p90_ns"]
                    <= stats["p99_ns"]
                )

    def test_format_bench_reports_http_tail(self, quick_payload):
        assert "http p50 put" in format_bench(quick_payload)

    def test_cluster_kernel_times_degraded_reads(self, quick_payload):
        """The v6 generation's kernel runs a real 3-node/R=2 fabric —
        replicated writes, healthy reads, then reads with one node's
        socket closed, so the degraded tail is a measured number."""
        entry = quick_payload["kernels"]["cluster_roundtrip"]
        assert entry["nodes"] == 3
        assert entry["replicas"] == 2
        for op in ("put", "get", "degraded_get"):
            stats = entry[op]
            assert 0 < stats["p50_ns"] <= stats["p90_ns"] <= stats["p99_ns"]

    def test_format_bench_reports_cluster_tail(self, quick_payload):
        text = format_bench(quick_payload)
        assert "degraded get" in text

    def test_repeats_validation(self):
        with pytest.raises(ValueError):
            run_bench(quick=True, repeats=0)

    def test_joint_replay_grid_refuses_to_time_a_divergence(self, monkeypatch):
        """The batched arm is verified against the per-cell oracle
        *before* any time is recorded: force the equality seam to
        report a divergence and the kernel must raise, not emit a
        document entry with a meaningless speedup."""
        import repro.bench as bench

        monkeypatch.setattr(bench, "_mix_results_identical", lambda a, b: False)
        with pytest.raises(RuntimeError, match="per-cell oracle"):
            bench._bench_joint_replay_grid(20, 1)

    def test_lockstep_replay_refuses_to_time_a_divergence(self, monkeypatch):
        """Same wall for the lockstep kernel: its arm is verified
        against the grouped loop before timing, through the same
        equality seam."""
        import repro.bench as bench

        monkeypatch.setattr(bench, "_mix_results_identical", lambda a, b: False)
        with pytest.raises(RuntimeError, match="grouped event loop"):
            bench._bench_lockstep_replay(20, 1)


class TestSchemaGate:
    def test_detects_missing_kernel(self, quick_payload):
        broken = json.loads(json.dumps(quick_payload))
        del broken["kernels"]["trace_replay"]
        assert any("trace_replay" in p for p in validate_bench(broken))

    def test_detects_missing_field(self, quick_payload):
        broken = json.loads(json.dumps(quick_payload))
        del broken["kernels"]["mix_run"]["ns_per_unit"]
        assert any("ns_per_unit" in p for p in validate_bench(broken))

    def test_detects_wrong_schema_tag(self, quick_payload):
        broken = dict(quick_payload, schema="repro-bench/999")
        assert any("schema" in p for p in validate_bench(broken))

    def test_detects_non_document(self):
        assert validate_bench([1, 2, 3])
        assert validate_bench(None)

    def test_timing_values_never_gate(self, quick_payload):
        """Absurd timings must still validate — CI gates drift only."""
        noisy = json.loads(json.dumps(quick_payload))
        for entry in noisy["kernels"].values():
            entry["seconds"] = 1e9
            entry["runs"] = [1e9]
        assert validate_bench(noisy) == []


class TestWriteBench:
    def test_round_trip(self, quick_payload, tmp_path):
        path = write_bench(quick_payload, out=tmp_path / "BENCH_test.json")
        loaded = json.loads(path.read_text())
        assert validate_bench(loaded) == []
        assert loaded["revision"] == quick_payload["revision"]

    def test_default_path_uses_revision(self):
        assert default_bench_path("abc123").name == "BENCH_abc123.json"

    def test_check_tool_accepts_written_file(self, quick_payload, tmp_path):
        import importlib.util
        import pathlib

        tool = pathlib.Path(__file__).resolve().parents[1] / "tools" / "check_bench.py"
        spec = importlib.util.spec_from_file_location("check_bench", tool)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        path = write_bench(quick_payload, out=tmp_path / "BENCH_x.json")
        assert module.check_file(path) == []
        assert module.main([str(path)]) == 0
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text("{}")
        assert module.main([str(bad)]) == 1

    def test_committed_trajectory_validates(self):
        """Every BENCH_*.json checked into benchmarks/perf/ must pass
        the schema gate.  Timing values are deliberately NOT gated for
        future documents (committing an honest measurement from a slow
        machine must never break tier-1); only the acceptance floors
        each PR's own document demonstrated are pinned: trace replay
        >=3x on the PR-4 origin, the warm sweep grid >=2x (and replay
        still >=3x) on the PR-5 document, and the batched joint replay
        >=2x over the per-cell oracle on the PR-7 document."""
        import pathlib

        perf = pathlib.Path(__file__).resolve().parents[1] / "benchmarks" / "perf"
        documents = sorted(perf.glob("BENCH_*.json"))
        assert documents, "the committed benchmark trajectory is empty"
        for document in documents:
            payload = json.loads(document.read_text())
            assert validate_bench(payload) == []
            if document.name == "BENCH_pr4.json":
                assert payload["kernels"]["trace_replay"]["speedup"] >= 3.0
            if document.name == "BENCH_pr5.json":
                assert payload["kernels"]["trace_replay"]["speedup"] >= 3.0
                assert payload["kernels"]["warm_sweep_grid"]["speedup"] >= 2.0
                assert payload["kernels"]["stream_synthesis"]["speedup"] > 1.0
            if document.name == "BENCH_pr7.json":
                assert payload["schema"] == BENCH_SCHEMA_V4
                assert payload["kernels"]["trace_replay"]["speedup"] >= 3.0
                assert payload["kernels"]["warm_sweep_grid"]["speedup"] >= 2.0
                replay = payload["kernels"]["joint_replay_grid"]
                assert replay["verified_identical"] is True
                assert replay["speedup"] >= 2.0
            if document.name == "BENCH_pr10.json":
                assert payload["schema"] == BENCH_SCHEMA
                lockstep = payload["kernels"]["lockstep_replay"]
                assert lockstep["verified_identical"] is True
                assert lockstep["speedup"] >= 2.0

    def test_legacy_generation_validates_against_its_own_kernels(self):
        """A repro-bench/1 document (BENCH_pr4.json) must stay valid
        without the sweep-level kernels, and must NOT validate as the
        current generation if its tag were rewritten."""
        import pathlib

        perf = pathlib.Path(__file__).resolve().parents[1] / "benchmarks" / "perf"
        payload = json.loads((perf / "BENCH_pr4.json").read_text())
        assert payload["schema"] == BENCH_SCHEMA_V1
        assert validate_bench(payload) == []
        retagged = dict(payload, schema=BENCH_SCHEMA)
        missing = set(KERNEL_NAMES) - set(LEGACY_KERNEL_NAMES)
        problems = validate_bench(retagged)
        for name in missing:
            assert any(name in p for p in problems)

    def test_v3_generation_validates_against_its_own_kernels(self):
        """A repro-bench/3 document (BENCH_pr6.json) predates the
        grouped-replay kernel: it must stay valid as-is, and retagging
        it as the current generation must flag the missing
        joint_replay_grid entry."""
        import pathlib

        from repro.bench import BENCH_SCHEMA_V3, V3_KERNEL_NAMES

        perf = pathlib.Path(__file__).resolve().parents[1] / "benchmarks" / "perf"
        payload = json.loads((perf / "BENCH_pr6.json").read_text())
        assert payload["schema"] == BENCH_SCHEMA_V3
        assert validate_bench(payload) == []
        retagged = dict(payload, schema=BENCH_SCHEMA)
        missing = set(KERNEL_NAMES) - set(V3_KERNEL_NAMES)
        assert missing == {
            "joint_replay_grid",
            "cluster_roundtrip",
            "lockstep_replay",
        }
        problems = validate_bench(retagged)
        for name in missing:
            assert any(name in p for p in problems)

    def test_v4_generation_validates_against_its_own_backends(self):
        """A repro-bench/4 document (BENCH_pr7.json) predates the http
        store engine: it must stay valid as-is with three backends, and
        retagging it as the current generation must flag the missing
        http arm of the store kernel."""
        import pathlib

        from repro.bench import V4_STORE_BACKEND_NAMES

        perf = pathlib.Path(__file__).resolve().parents[1] / "benchmarks" / "perf"
        payload = json.loads((perf / "BENCH_pr7.json").read_text())
        assert payload["schema"] == BENCH_SCHEMA_V4
        assert validate_bench(payload) == []
        backends = payload["kernels"]["store_backend_roundtrip"]["backends"]
        assert set(backends) == set(V4_STORE_BACKEND_NAMES)
        retagged = dict(payload, schema=BENCH_SCHEMA)
        problems = validate_bench(retagged)
        assert any("http" in p for p in problems)


    def test_v5_generation_validates_against_its_own_kernels(self):
        """A repro-bench/5 document (BENCH_pr8.json) predates the
        cluster fabric: it must stay valid as-is, and retagging it as
        the current generation must flag the missing cluster_roundtrip
        entry."""
        import pathlib

        from repro.bench import BENCH_SCHEMA_V5, V5_KERNEL_NAMES

        perf = pathlib.Path(__file__).resolve().parents[1] / "benchmarks" / "perf"
        payload = json.loads((perf / "BENCH_pr8.json").read_text())
        assert payload["schema"] == BENCH_SCHEMA_V5
        assert validate_bench(payload) == []
        # The v5 store kernel already timed all four engines.
        backends = payload["kernels"]["store_backend_roundtrip"]["backends"]
        assert set(STORE_BACKEND_NAMES) <= set(backends)
        retagged = dict(payload, schema=BENCH_SCHEMA)
        missing = set(KERNEL_NAMES) - set(V5_KERNEL_NAMES)
        assert missing == {"cluster_roundtrip", "lockstep_replay"}
        problems = validate_bench(retagged)
        for name in missing:
            assert any(name in p for p in problems)


    def test_v6_generation_validates_against_its_own_kernels(self):
        """A repro-bench/6 document (BENCH_pr9.json) predates the
        lockstep kernel: it must stay valid as-is, and retagging it as
        the current generation must flag the missing lockstep_replay
        entry."""
        import pathlib

        from repro.bench import BENCH_SCHEMA_V6, V6_KERNEL_NAMES

        perf = pathlib.Path(__file__).resolve().parents[1] / "benchmarks" / "perf"
        payload = json.loads((perf / "BENCH_pr9.json").read_text())
        assert payload["schema"] == BENCH_SCHEMA_V6
        assert validate_bench(payload) == []
        retagged = dict(payload, schema=BENCH_SCHEMA)
        missing = set(KERNEL_NAMES) - set(V6_KERNEL_NAMES)
        assert missing == {"lockstep_replay"}
        problems = validate_bench(retagged)
        for name in missing:
            assert any(name in p for p in problems)


class TestCompareBench:
    def test_same_generation_compare(self, quick_payload):
        from repro.bench import compare_bench

        comparison = compare_bench(quick_payload, quick_payload)
        assert set(comparison["kernels"]) == set(KERNEL_NAMES)
        assert comparison["only_old"] == comparison["only_new"] == []
        for row in comparison["kernels"].values():
            assert row["ratio"] == pytest.approx(1.0)
        lockstep = comparison["kernels"]["lockstep_replay"]
        assert lockstep["floor"] == 2.0
        assert isinstance(lockstep["floor_met"], bool)

    def test_cross_generation_compare(self, quick_payload):
        """An older committed document compares over the shared kernel
        set; kernels its generation predates land in only_new."""
        import pathlib

        from repro.bench import compare_bench

        perf = pathlib.Path(__file__).resolve().parents[1] / "benchmarks" / "perf"
        old = json.loads((perf / "BENCH_pr9.json").read_text())
        comparison = compare_bench(old, quick_payload)
        assert comparison["only_new"] == ["lockstep_replay"]
        assert "lockstep_replay" not in comparison["kernels"]
        assert "joint_replay_grid" in comparison["kernels"]
        floor_row = comparison["kernels"]["joint_replay_grid"]
        assert floor_row["floor"] == 2.0

    def test_rejects_invalid_documents(self, quick_payload):
        from repro.bench import compare_bench

        with pytest.raises(ValueError, match="old document"):
            compare_bench({}, quick_payload)
        with pytest.raises(ValueError, match="new document"):
            compare_bench(quick_payload, {"schema": "nope"})

    def test_format_compare_reports_floor_status(self, quick_payload):
        from repro.bench import compare_bench, format_compare

        text = format_compare(compare_bench(quick_payload, quick_payload))
        assert "lockstep_replay" in text
        assert "floor 2.0x" in text


def test_format_bench_lists_every_kernel(quick_payload):
    text = format_bench(quick_payload)
    for name in KERNEL_NAMES:
        assert name in text
