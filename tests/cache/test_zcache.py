"""Tests for repro.cache.zcache."""

import numpy as np
import pytest

from repro.cache.zcache import ZCache


class TestZCache:
    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ZCache(0)
        with pytest.raises(ValueError):
            ZCache(16, candidates=0)
        with pytest.raises(ValueError):
            ZCache(16, ways=0)

    def test_candidates_clamped_to_capacity(self):
        cache = ZCache(8, candidates=52)
        assert cache.candidates == 8

    def test_miss_then_hit(self):
        cache = ZCache(16)
        assert not cache.access(5).hit
        assert cache.access(5).hit

    def test_fills_before_evicting(self):
        cache = ZCache(16)
        for addr in range(16):
            result = cache.access(addr)
            assert result.evicted is None
        assert cache.occupancy == 16
        result = cache.access(99)
        assert result.evicted is not None

    def test_replacement_prefers_older_lines(self):
        """High-candidate replacement approximates LRU: recently used
        lines survive far better than chance."""
        cache = ZCache(64, candidates=52, seed=1)
        for addr in range(64):
            cache.access(addr)
        # Keep touching a small hot set while streaming cold lines.
        hot = list(range(8))
        survived_checks = 0
        for i, cold in enumerate(range(100, 400)):
            for h in hot:
                cache.access(h)
            cache.access(cold)
        assert all(h in cache for h in hot)

    def test_miss_ratio_statistic(self):
        cache = ZCache(32, seed=0)
        rng = np.random.default_rng(0)
        for addr in rng.integers(0, 64, size=2000):
            cache.access(int(addr))
        # Working set is 2x capacity: miss ratio far from 0 and 1.
        assert 0.05 < cache.miss_ratio < 0.8

    def test_determinism_by_seed(self):
        def run(seed):
            cache = ZCache(32, seed=seed)
            rng = np.random.default_rng(7)
            outcomes = []
            for addr in rng.integers(0, 100, size=500):
                outcomes.append(cache.access(int(addr)).hit)
            return outcomes

        assert run(3) == run(3)

    def test_occupancy_never_exceeds_capacity(self):
        cache = ZCache(16, seed=0)
        for addr in range(1000):
            cache.access(addr)
        assert cache.occupancy == 16
