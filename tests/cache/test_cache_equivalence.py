"""Property tests: optimized cache arrays == kept naive references.

The PR-4 flat-array rewrite (integer LRU stamps, batched
``access_many``) must be *access-for-access* identical to the original
``List`` + ``dict`` implementations preserved in
:mod:`repro.cache.reference`: same hits, same evictions, same final
LRU state, across randomized address streams, geometries, and
partition masks.  These tests drive both generations side by side and
also cross-check each class's scalar path against its own batched
path (batch boundaries must be invisible).
"""

import numpy as np
import pytest

from repro.cache.reference import (
    NaiveSetAssociativeCache,
    NaiveWayPartitionedCache,
)
from repro.cache.set_assoc import SetAssociativeCache
from repro.cache.vantage import VantageCache
from repro.cache.way_partition import WayPartitionedCache
from repro.cache.zcache import ZCache
from repro.monitor.umon import UtilityMonitor


def _random_batches(rng, addrs):
    """Split a stream into random-sized batches (batching must be
    invisible, so sizes should not matter)."""
    out = []
    start = 0
    while start < len(addrs):
        size = int(rng.integers(1, 400))
        out.append(addrs[start : start + size])
        start += size
    return out


GEOMETRIES = [(64, 4), (256, 16), (1024, 8), (32, 32)]


class TestSetAssociativeEquivalence:
    @pytest.mark.parametrize("num_lines,ways", GEOMETRIES)
    def test_scalar_access_matches_naive(self, num_lines, ways):
        """Hits AND evictions agree access for access."""
        rng = np.random.default_rng(num_lines + ways)
        fast = SetAssociativeCache(num_lines, ways)
        naive = NaiveSetAssociativeCache(num_lines, ways)
        for addr in rng.integers(0, 4 * num_lines, size=6000).tolist():
            got = fast.access(addr)
            want = naive.access(addr)
            assert (got.hit, got.evicted) == (want.hit, want.evicted)
        assert (fast.hits, fast.misses) == (naive.hits, naive.misses)
        assert set(fast._where) == set(naive._where)

    @pytest.mark.parametrize("num_lines,ways", GEOMETRIES)
    def test_batched_access_matches_naive(self, num_lines, ways):
        """access_many == per-access naive loop, incl. final LRU state."""
        rng = np.random.default_rng(17 * num_lines + ways)
        fast = SetAssociativeCache(num_lines, ways)
        naive = NaiveSetAssociativeCache(num_lines, ways)
        stream = rng.integers(0, 3 * num_lines, size=8000)
        naive_hits = [naive.access(int(a)).hit for a in stream]
        fast_hits: list = []
        for batch in _random_batches(rng, stream):
            fast_hits.extend(fast.access_many(batch).tolist())
        assert fast_hits == naive_hits
        assert (fast.hits, fast.misses) == (naive.hits, naive.misses)
        assert fast.occupancy == naive.occupancy
        for index in range(fast.num_sets):
            assert fast.lru_order(index) == naive.lru_order(index)

    def test_scalar_and_batched_agree(self):
        """One cache driven scalar, one batched: identical end state."""
        rng = np.random.default_rng(5)
        stream = rng.integers(0, 300, size=4000)
        scalar = SetAssociativeCache(128, 8)
        batched = SetAssociativeCache(128, 8)
        scalar_hits = [scalar.access(int(a)).hit for a in stream]
        batched_hits: list = []
        for batch in _random_batches(rng, stream):
            batched_hits.extend(batched.access_many(batch).tolist())
        assert scalar_hits == batched_hits
        assert scalar.tags.tolist() == batched.tags.tolist()
        assert scalar.stamps.tolist() == batched.stamps.tolist()


def _random_allocation(rng, ways, partitions):
    """A random way split: each partition >= 1 way, total <= ways."""
    cuts = sorted(rng.choice(np.arange(1, ways), size=partitions - 1, replace=False).tolist()) if partitions > 1 else []
    bounds = [0] + cuts + [ways]
    return [bounds[i + 1] - bounds[i] for i in range(partitions)]


class TestWayPartitionedEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_randomized_streams_and_masks(self, seed):
        """Random accessors, random reallocations: identical behaviour."""
        rng = np.random.default_rng(seed)
        ways = int(rng.choice([4, 8, 16]))
        num_sets = int(rng.choice([4, 16]))
        partitions = int(rng.integers(1, min(ways, 4) + 1))
        fast = WayPartitionedCache(num_sets * ways, ways, partitions)
        naive = NaiveWayPartitionedCache(num_sets * ways, ways, partitions)
        for _ in range(8):
            allocation = _random_allocation(rng, ways, partitions)
            fast.set_allocation(allocation)
            naive.set_allocation(allocation)
            for addr in rng.integers(0, 6 * num_sets, size=1500).tolist():
                part = int(rng.integers(0, partitions))
                got = fast.access(part, addr)
                want = naive.access(part, addr)
                assert (got.hit, got.evicted) == (want.hit, want.evicted)
        assert fast.hits == naive.hits
        assert fast.misses == naive.misses
        assert fast.occupancy == naive.occupancy
        for part in range(partitions):
            assert fast.resident_lines(part) == naive.resident_lines(part)

    def test_batched_matches_scalar(self):
        """Single-partition batches == the scalar loop, state included."""
        rng = np.random.default_rng(40)
        scalar = WayPartitionedCache(256, 8, 2)
        batched = WayPartitionedCache(256, 8, 2)
        for part in (0, 1, 0, 1):
            stream = rng.integers(0, 400, size=2000)
            scalar_hits = [scalar.access(part, int(a)).hit for a in stream]
            got = batched.access_many(part, stream).tolist()
            assert got == scalar_hits
        assert scalar.hits == batched.hits
        assert scalar.misses == batched.misses
        assert scalar.owners.tolist() == batched.owners.tolist()
        for index in range(scalar.num_sets):
            assert scalar.lru_order(index) == batched.lru_order(index)


class TestReplacementArraysBatchedPaths:
    """zcache/Vantage batched paths must match their scalar paths
    (including the per-miss RNG draws, which both consume in the same
    order)."""

    def test_zcache_batched_matches_scalar(self):
        rng = np.random.default_rng(3)
        stream = rng.integers(0, 900, size=5000)
        scalar = ZCache(512, candidates=16, seed=11)
        batched = ZCache(512, candidates=16, seed=11)
        scalar_hits = [scalar.access(int(a)).hit for a in stream]
        batched_hits: list = []
        for batch in _random_batches(rng, stream):
            batched_hits.extend(batched.access_many(batch).tolist())
        assert batched_hits == scalar_hits
        assert (scalar.hits, scalar.misses) == (batched.hits, batched.misses)
        assert scalar._slot_addr == batched._slot_addr
        assert scalar._slot_time == batched._slot_time

    def test_vantage_batched_matches_scalar(self):
        rng = np.random.default_rng(9)
        scalar = VantageCache(512, 3, candidates=16, seed=7)
        batched = VantageCache(512, 3, candidates=16, seed=7)
        for cache in (scalar, batched):
            cache.set_target(0, 300)
            cache.set_target(1, 150)
            cache.set_target(2, 62)
        for part in (0, 1, 2, 0, 2, 1):
            stream = rng.integers(0, 800, size=1500)
            scalar_hits = [scalar.access(part, int(a)).hit for a in stream]
            got = batched.access_many(part, stream).tolist()
            assert got == scalar_hits
        assert scalar.hits.tolist() == batched.hits.tolist()
        assert scalar.misses.tolist() == batched.misses.tolist()
        assert scalar.partition_sizes() == batched.partition_sizes()
        assert scalar._slot_addr == batched._slot_addr
        assert scalar._slot_part == batched._slot_part
        assert scalar._slot_time == batched._slot_time
        assert (
            scalar.under_target_evictions.tolist()
            == batched.under_target_evictions.tolist()
        )

    def test_umon_observe_many_matches_observe(self):
        rng = np.random.default_rng(21)
        stream = rng.integers(0, 1 << 41, size=20000)
        scalar = UtilityMonitor(ways=8, sets=4, sample_shift=4)
        batched = UtilityMonitor(ways=8, sets=4, sample_shift=4)
        for addr in stream.tolist():
            scalar.observe(addr)
        for batch in _random_batches(rng, stream):
            batched.observe_many(batch)
        assert scalar.sampled == batched.sampled
        assert scalar.miss_count == batched.miss_count
        assert scalar.way_hits.tolist() == batched.way_hits.tolist()
        assert scalar._stacks == batched._stacks
