"""Tests for repro.cache.schemes (behavioural scheme descriptors)."""

import numpy as np
import pytest

from repro.cache.schemes import (
    FIG13_SCHEMES,
    SchemeModel,
    vantage_setassoc,
    vantage_zcache,
    way_partitioning,
)

LLC = 196_608  # 12 MB in lines


class TestFactories:
    def test_zcache_is_ideal(self):
        scheme = vantage_zcache(LLC)
        assert scheme.granularity_lines == 1
        assert scheme.fill_efficiency == (1.0, 1.0)
        assert scheme.forced_eviction_frac == 0.0
        assert scheme.miss_multiplier(1000, LLC) == 1.0

    def test_vantage_sa16_leaks_more_than_sa64(self):
        sa16 = vantage_setassoc(LLC, 16)
        sa64 = vantage_setassoc(LLC, 64)
        assert sa16.forced_eviction_frac > sa64.forced_eviction_frac
        assert sa16.eviction_jitter > sa64.eviction_jitter

    def test_way_partitioning_is_coarse(self):
        wp16 = way_partitioning(LLC, 16)
        assert wp16.granularity_lines == LLC // 16
        assert wp16.max_partitions == 16

    def test_way_partitioning_fill_is_slow_and_variable(self):
        wp = way_partitioning(LLC, 16)
        low, high = wp.fill_efficiency
        assert low < 0.5
        assert high < 1.0

    def test_unmodelled_way_counts_rejected(self):
        with pytest.raises(ValueError):
            way_partitioning(LLC, 8)
        with pytest.raises(ValueError):
            vantage_setassoc(LLC, 32)

    def test_fig13_set(self):
        schemes = FIG13_SCHEMES(LLC)
        names = [s.name for s in schemes]
        assert names == [
            "WayPart SA16",
            "WayPart SA64",
            "Vantage SA16",
            "Vantage SA64",
            "Vantage Z4/52",
        ]


class TestHooks:
    def test_quantize_rounds_down_to_quantum(self):
        wp = way_partitioning(LLC, 16)
        way = LLC // 16
        assert wp.quantize(way * 2.7) == way * 2
        assert wp.quantize(10) == way  # minimum one way

    def test_quantize_fine_for_vantage(self):
        z = vantage_zcache(LLC)
        assert z.quantize(12345.6) == 12345

    def test_miss_multiplier_worse_for_small_allocations(self):
        wp = way_partitioning(LLC, 16)
        way = LLC // 16
        small = wp.miss_multiplier(way, LLC)
        big = wp.miss_multiplier(8 * way, LLC)
        assert small > big > 1.0

    def test_effective_target_derated_for_soft_schemes(self):
        sa16 = vantage_setassoc(LLC, 16)
        assert sa16.effective_target(1000) == pytest.approx(940.0)
        z = vantage_zcache(LLC)
        assert z.effective_target(1000) == 1000

    def test_draw_fill_efficiency_within_range(self):
        wp = way_partitioning(LLC, 16)
        rng = np.random.default_rng(0)
        draws = [wp.draw_fill_efficiency(rng) for _ in range(100)]
        low, high = wp.fill_efficiency
        assert all(low <= d <= high for d in draws)
        assert max(draws) - min(draws) > 0.1  # actually variable

    def test_draw_idle_loss(self):
        sa16 = vantage_setassoc(LLC, 16)
        rng = np.random.default_rng(0)
        losses = [sa16.draw_idle_loss(rng) for _ in range(100)]
        assert all(0 <= x <= sa16.eviction_jitter for x in losses)
        z = vantage_zcache(LLC)
        assert z.draw_idle_loss(rng) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SchemeModel(
                name="bad",
                granularity_lines=0,
                fill_efficiency=(0.5, 1.0),
                assoc_ways_per_partition=4,
                assoc_penalty_coeff=0,
                forced_eviction_frac=0,
                eviction_jitter=0,
            )
        with pytest.raises(ValueError):
            SchemeModel(
                name="bad",
                granularity_lines=1,
                fill_efficiency=(1.0, 0.5),
                assoc_ways_per_partition=4,
                assoc_penalty_coeff=0,
                forced_eviction_frac=0,
                eviction_jitter=0,
            )
