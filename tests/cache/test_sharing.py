"""Tests for repro.cache.sharing (the unmanaged-LRU fluid model)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.sharing import SharedOccupancyModel


class TestStep:
    def test_validation(self):
        with pytest.raises(ValueError):
            SharedOccupancyModel(0)
        model = SharedOccupancyModel(100)
        with pytest.raises(ValueError):
            model.step(np.array([1.0]), np.array([1.0, 2.0]), 1.0)
        with pytest.raises(ValueError):
            model.step(np.array([-1.0]), np.array([1.0]), 1.0)
        with pytest.raises(ValueError):
            model.step(np.array([1.0]), np.array([1.0]), -1.0)
        with pytest.raises(ValueError):
            model.step(np.array([200.0]), np.array([1.0]), 1.0)

    def test_zero_dt_identity(self):
        model = SharedOccupancyModel(100)
        occ = np.array([30.0, 20.0])
        out = model.step(occ, np.array([1.0, 1.0]), 0.0)
        assert out == pytest.approx(occ)

    def test_no_insertions_identity(self):
        model = SharedOccupancyModel(100)
        occ = np.array([30.0, 20.0])
        out = model.step(occ, np.array([0.0, 0.0]), 10.0)
        assert out == pytest.approx(occ)

    def test_fill_phase_before_eviction(self):
        model = SharedOccupancyModel(100)
        out = model.step(np.array([0.0, 0.0]), np.array([1.0, 1.0]), 10.0)
        # 20 insertions into an empty cache: no evictions yet.
        assert out == pytest.approx([10.0, 10.0])
        assert out.sum() < 100

    def test_idle_app_decays_exponentially(self):
        """The inertia effect: an idle app's footprint decays as the
        co-runners insert (paper Figures 2/4)."""
        model = SharedOccupancyModel(100)
        occ = np.array([50.0, 50.0])
        rates = np.array([0.0, 1.0])  # app 0 idle
        out = model.step(occ, rates, 100.0)
        expected = 50.0 * np.exp(-1.0 * 100.0 / 100.0)
        assert out[0] == pytest.approx(expected, rel=0.01)

    def test_converges_to_proportional_share(self):
        model = SharedOccupancyModel(100)
        occ = np.array([90.0, 10.0])
        rates = np.array([1.0, 3.0])
        out = model.step(occ, rates, 1e6)
        assert out == pytest.approx([25.0, 75.0], rel=0.01)

    def test_equilibrium(self):
        model = SharedOccupancyModel(200)
        eq = model.equilibrium(np.array([1.0, 1.0, 2.0]))
        assert eq == pytest.approx([50.0, 50.0, 100.0])
        with pytest.raises(ValueError):
            model.equilibrium(np.array([0.0, 0.0]))
        with pytest.raises(ValueError):
            model.equilibrium(np.array([-1.0, 1.0]))


@settings(max_examples=60, deadline=None)
@given(
    occ=st.lists(st.floats(min_value=0, max_value=30), min_size=2, max_size=6),
    rates=st.lists(st.floats(min_value=0, max_value=0.1), min_size=2, max_size=6),
    dt=st.floats(min_value=0, max_value=1e5),
)
def test_property_capacity_conserved_and_nonnegative(occ, rates, dt):
    n = min(len(occ), len(rates))
    occ_arr = np.asarray(occ[:n])
    rates_arr = np.asarray(rates[:n])
    model = SharedOccupancyModel(200.0)
    out = model.step(occ_arr, rates_arr, dt)
    assert np.all(out >= -1e-9)
    assert out.sum() <= 200.0 + 1e-6
    # A full cache stays full; a partial one never shrinks in total.
    if rates_arr.sum() > 0:
        assert out.sum() >= occ_arr.sum() - 1e-6
