"""Tests for repro.cache.set_assoc."""

import pytest

from repro.cache.set_assoc import SetAssociativeCache


class TestBasics:
    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(0, 4)
        with pytest.raises(ValueError):
            SetAssociativeCache(16, 0)
        with pytest.raises(ValueError):
            SetAssociativeCache(10, 4)  # not a multiple of ways

    def test_geometry(self):
        cache = SetAssociativeCache(64, 4)
        assert cache.num_sets == 16
        assert cache.ways == 4

    def test_miss_then_hit(self):
        cache = SetAssociativeCache(16, 4)
        assert not cache.access(5).hit
        assert cache.access(5).hit
        assert 5 in cache

    def test_counts(self):
        cache = SetAssociativeCache(16, 4)
        cache.access(1)
        cache.access(1)
        cache.access(2)
        assert cache.hits == 1
        assert cache.misses == 2
        assert cache.miss_ratio == pytest.approx(2 / 3)

    def test_occupancy_grows_to_capacity(self):
        cache = SetAssociativeCache(16, 4)
        for addr in range(16):
            cache.access(addr)
        assert cache.occupancy == 16
        assert len(cache) == 16


class TestLRUReplacement:
    def test_lru_victim_within_set(self):
        # One set of 2 ways: addresses mapping to set 0 of a 2-set cache.
        cache = SetAssociativeCache(4, 2)  # 2 sets
        cache.access(0)  # set 0
        cache.access(2)  # set 0
        cache.access(0)  # touch 0: now 2 is LRU
        result = cache.access(4)  # set 0, evicts 2
        assert result.evicted == 2
        assert 0 in cache
        assert 2 not in cache

    def test_hit_refreshes_recency(self):
        cache = SetAssociativeCache(2, 2)  # 1 set, 2 ways
        cache.access(0)
        cache.access(1)
        cache.access(0)  # 1 is now LRU
        assert cache.access(2).evicted == 1

    def test_stack_property(self):
        """A bigger cache's contents always include a smaller one's hits."""
        small = SetAssociativeCache(16, 16)  # fully associative
        big = SetAssociativeCache(64, 64)
        import numpy as np

        rng = np.random.default_rng(3)
        small_hits = big_hits = 0
        for addr in rng.integers(0, 40, size=2000):
            small_hits += small.access(int(addr)).hit
            big_hits += big.access(int(addr)).hit
        assert big_hits >= small_hits

    def test_flush(self):
        cache = SetAssociativeCache(16, 4)
        cache.access(1)
        cache.flush()
        assert cache.occupancy == 0
        assert cache.misses == 0
        assert 1 not in cache

    def test_working_set_that_fits_always_hits(self):
        cache = SetAssociativeCache(64, 4)
        for _ in range(5):
            for addr in range(32):
                cache.access(addr)
        # After the first cold pass, everything hits (no conflicts at
        # 2x headroom and uniform mapping).
        assert cache.hits == 4 * 32


class TestBatchedAccess:
    def test_access_many_hit_mask(self):
        import numpy as np

        cache = SetAssociativeCache(16, 4)
        hits = cache.access_many(np.array([5, 5, 6, 5]))
        assert hits.dtype == np.bool_
        assert hits.tolist() == [False, True, False, True]
        assert cache.hits == 2 and cache.misses == 2

    def test_access_many_equals_scalar_sequence(self):
        import numpy as np

        rng = np.random.default_rng(12)
        stream = rng.integers(0, 64, size=800)
        batched = SetAssociativeCache(32, 4)
        scalar = SetAssociativeCache(32, 4)
        mask = batched.access_many(stream)
        want = [scalar.access(int(a)).hit for a in stream]
        assert mask.tolist() == want
        assert batched.tags.tolist() == scalar.tags.tolist()
        assert batched.stamps.tolist() == scalar.stamps.tolist()
        for index in range(batched.num_sets):
            assert batched.lru_order(index) == scalar.lru_order(index)

    def test_flush_resets_batched_state(self):
        cache = SetAssociativeCache(16, 4)
        cache.access_many([1, 2, 3])
        cache.flush()
        assert cache.occupancy == 0
        assert cache.access_many([1]).tolist() == [False]
