"""Tests for repro.cache.way_partition: the weaknesses Fig 13 shows."""

import pytest

from repro.cache.way_partition import WayPartitionedCache


class TestConfiguration:
    def test_validation(self):
        with pytest.raises(ValueError):
            WayPartitionedCache(0, 4, 2)
        with pytest.raises(ValueError):
            WayPartitionedCache(10, 4, 2)  # not multiple of ways
        with pytest.raises(ValueError):
            WayPartitionedCache(16, 4, 5)  # more partitions than ways

    def test_default_even_split(self):
        cache = WayPartitionedCache(64, 4, 2)
        assert cache.allocation(0) == 2
        assert cache.allocation(1) == 2

    def test_set_allocation_validation(self):
        cache = WayPartitionedCache(64, 4, 2)
        with pytest.raises(ValueError):
            cache.set_allocation([3])
        with pytest.raises(ValueError):
            cache.set_allocation([0, 4])
        with pytest.raises(ValueError):
            cache.set_allocation([3, 3])

    def test_coarse_allocation_granularity(self):
        """Allocations are whole ways: a 16-way cache cannot express
        fractions below 1/16 of capacity."""
        cache = WayPartitionedCache(256, 16, 2)
        cache.set_allocation([1, 15])
        assert cache.allocation(0) == 1


class TestAccessPath:
    def test_hit_anywhere_insert_own_ways(self):
        cache = WayPartitionedCache(8, 4, 2)  # 2 sets, 4 ways
        cache.set_allocation([2, 2])
        cache.access(0, 0)
        # Partition 1 can hit on partition 0's line (lookups search all
        # ways), without claiming it.
        assert cache.access(1, 0).hit

    def test_insertions_restricted_to_own_ways(self):
        cache = WayPartitionedCache(4, 4, 2)  # 1 set
        cache.set_allocation([2, 2])
        cache.access(0, 0)
        cache.access(0, 4)
        cache.access(0, 8)  # p0 must evict its own line, not p1 space
        assert cache.occupancy <= 3

    def test_partition_cannot_interfere(self):
        """Streaming in one partition never evicts the other's lines."""
        cache = WayPartitionedCache(32, 4, 2)  # 8 sets
        cache.set_allocation([2, 2])
        for addr in range(16):
            cache.access(0, addr)  # p0's working set: 2 ways worth
        for addr in range(1000, 1400):
            cache.access(1, addr)  # p1 streams
        hits = 0
        for addr in range(16):
            hits += cache.access(0, addr).hit
        assert hits == 16


class TestSlowTransients:
    def test_reassigned_ways_keep_stale_lines(self):
        """After reallocation, the old owner's lines persist until the
        new owner misses in each set — the slow, pattern-dependent
        transient that breaks Ubik's bounds (Section 7.3)."""
        cache = WayPartitionedCache(32, 4, 2)  # 8 sets
        cache.set_allocation([3, 1])
        for addr in range(24):
            cache.access(0, addr)  # p0 fills 3 ways everywhere
        assert cache.resident_lines(0) == 24
        # Give p1 two of p0's ways.  p0's lines remain resident.
        cache.set_allocation([1, 3])
        assert cache.resident_lines(0) == 24
        # p1 claims lines only where it misses; touching only set 0
        # leaves p0's lines in the other 7 sets.
        cache.access(1, 8 * 10)  # maps to set 0
        assert cache.resident_lines(0) >= 20

    def test_miss_ratio_per_partition(self):
        cache = WayPartitionedCache(16, 4, 2)
        cache.set_allocation([2, 2])
        cache.access(0, 0)
        cache.access(0, 0)
        assert cache.partition_miss_ratio(0) == pytest.approx(0.5)
        assert cache.partition_miss_ratio(1) == 0.0


class TestReplacementOrderContract:
    """The explicit eviction-order rules (module docstring): empty ways
    claimed lowest-index-first, then the minimum-stamp (LRU) line in
    the partition's range; hits restamp wherever the line sits."""

    def test_empty_ways_claimed_lowest_index_first(self):
        cache = WayPartitionedCache(4, 4, 1)  # 1 set, 4 ways
        for addr in (0, 1, 2):
            cache.access(0, addr)
        # Slots fill in way order: tags reflect insertion sequence.
        assert cache.tags_of_set(0)[:3] == [0, 1, 2]

    def test_victim_is_minimum_stamp_in_range(self):
        cache = WayPartitionedCache(4, 4, 1)  # 1 set, 4 ways
        for addr in (0, 1, 2, 3):
            cache.access(0, addr)
        cache.access(0, 1)  # restamp 1: 0 is now the oldest
        assert cache.access(0, 4).evicted == 0
        # Next-oldest is 2 (1 and 3 were touched later than it).
        assert cache.access(0, 5).evicted == 2

    def test_hit_restamps_across_partition_boundary(self):
        """A hit on another partition's line refreshes its recency
        without transferring ownership."""
        cache = WayPartitionedCache(8, 4, 2)  # 2 sets
        cache.set_allocation([2, 2])
        cache.access(0, 0)  # p0 inserts addr 0 (set 0)
        cache.access(0, 2)  # p0 inserts addr 2 (set 0): 0 is older
        cache.access(1, 0)  # p1 *hits* p0's line: restamped, not moved
        assert cache.resident_lines(0) == 2
        assert cache.resident_lines(1) == 0
        # p0's next eviction takes addr 2 — the restamp made 0 younger.
        assert cache.access(0, 4).evicted == 2

    def test_eviction_restricted_to_own_range_even_when_older_elsewhere(self):
        cache = WayPartitionedCache(4, 4, 2)  # 1 set
        cache.set_allocation([2, 2])
        cache.access(0, 0)  # oldest line overall, in p0's ways
        cache.access(1, 1)
        cache.access(1, 2)
        # p1 is full; its victim must come from its own ways, never p0's
        # strictly older line.
        assert cache.access(1, 3).evicted == 1

    def test_stamps_strictly_increase(self):
        """The clock ticks once per access (hit or miss), so stamps are
        unique and the LRU victim is always unambiguous."""
        cache = WayPartitionedCache(8, 4, 2)
        rng_addrs = [0, 1, 0, 2, 1, 3, 0, 5, 7]
        for addr in rng_addrs:
            cache.access(addr % 2, addr)
        stamps = [s for s, t in zip(cache.stamps_of_set(0) + cache.stamps_of_set(1),
                                    cache.tags_of_set(0) + cache.tags_of_set(1))
                  if t != -1]
        assert len(stamps) == len(set(stamps))

    def test_access_many_matches_scalar_contract(self):
        batched = WayPartitionedCache(4, 4, 1)
        scalar = WayPartitionedCache(4, 4, 1)
        stream = [0, 1, 2, 3, 1, 4, 5]
        hits = batched.access_many(0, stream).tolist()
        assert hits == [scalar.access(0, a).hit for a in stream]
        assert batched.lru_order(0) == scalar.lru_order(0)
