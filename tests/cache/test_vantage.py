"""Tests for repro.cache.vantage: the properties Ubik relies on."""

import numpy as np
import pytest

from repro.cache.vantage import VantageCache


def fill_partition(cache, partition, count, base=0):
    for addr in range(base, base + count):
        cache.access(partition, addr)


class TestConfiguration:
    def test_validation(self):
        with pytest.raises(ValueError):
            VantageCache(0, 2)
        with pytest.raises(ValueError):
            VantageCache(16, 0)
        cache = VantageCache(16, 2)
        with pytest.raises(ValueError):
            cache.set_target(5, 4)
        with pytest.raises(ValueError):
            cache.set_target(0, -1)

    def test_targets_roundtrip(self):
        cache = VantageCache(64, 2)
        cache.set_target(0, 40)
        assert cache.target(0) == 40


class TestGrowthTransient:
    def test_partition_grows_one_line_per_miss(self):
        """Paper Section 5.1: an under-target partition grows by one
        line per miss and suffers ~no evictions until it reaches its
        target."""
        cache = VantageCache(1024, 2, candidates=52, seed=0)
        cache.set_target(0, 256)
        cache.set_target(1, 768)
        fill_partition(cache, 1, 1024, base=10_000)  # pressure from p1
        start = cache.actual_size(0)
        misses_before = int(cache.misses[0])
        fill_partition(cache, 0, 200)  # 200 cold misses
        grown = cache.actual_size(0) - start
        new_misses = int(cache.misses[0]) - misses_before
        assert grown == new_misses  # exactly one line per miss

    def test_under_target_partition_rarely_loses_lines(self):
        cache = VantageCache(2048, 2, candidates=52, seed=2)
        cache.set_target(0, 512)
        cache.set_target(1, 1536)
        fill_partition(cache, 0, 300)  # p0 under target (300 < 512)
        # Heavy streaming from p1 must not displace p0's lines.
        fill_partition(cache, 1, 8000, base=50_000)
        assert cache.under_target_evictions[0] <= 8000 * 0.01

    def test_over_target_partition_shrinks_under_pressure(self):
        cache = VantageCache(1024, 2, candidates=52, seed=3)
        cache.set_target(0, 512)
        cache.set_target(1, 512)
        fill_partition(cache, 0, 1024)  # p0 overfills while p1 empty
        assert cache.actual_size(0) == 1024
        cache.set_target(0, 256)  # downsize p0
        fill_partition(cache, 1, 2000, base=30_000)
        # p1's insertions demote p0 toward its new target.
        assert cache.actual_size(0) <= 300

    def test_partition_sizes_sum_to_occupancy(self):
        cache = VantageCache(256, 3, seed=1)
        cache.set_target(0, 100)
        cache.set_target(1, 100)
        cache.set_target(2, 56)
        for p in range(3):
            fill_partition(cache, p, 200, base=p * 10_000)
        assert sum(cache.partition_sizes()) == cache.occupancy


class TestIsolation:
    def test_partition_hit_isolation(self):
        """A partition at target keeps its working set despite a
        streaming co-runner — Vantage's interference guarantee."""
        cache = VantageCache(1024, 2, candidates=52, seed=4)
        cache.set_target(0, 256)
        cache.set_target(1, 768)
        # p0 warms a working set that fits its target.
        for _ in range(3):
            fill_partition(cache, 0, 200)
        hits_before = int(cache.hits[0])
        # p1 streams 20k cold lines.
        fill_partition(cache, 1, 20_000, base=100_000)
        # p0's set still hits.
        fill_partition(cache, 0, 200)
        new_hits = int(cache.hits[0]) - hits_before
        assert new_hits >= 190  # ~all of the 200 re-accesses hit

    def test_miss_ratio_accounting(self):
        cache = VantageCache(64, 2, seed=0)
        cache.set_target(0, 32)
        cache.set_target(1, 32)
        fill_partition(cache, 0, 16)
        fill_partition(cache, 0, 16)  # re-touch: hits
        assert cache.partition_miss_ratio(0) == pytest.approx(0.5)
        assert cache.partition_miss_ratio(1) == 0.0
