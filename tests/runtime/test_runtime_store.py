"""Tests for the persistent fingerprint-keyed result store."""

import json

import pytest

from repro.runtime.spec import RunRecord
from repro.runtime.store import ResultStore, default_store_root
from repro.sim.mix_runner import BaselineResult


def _record(policy: str = "Ubik") -> RunRecord:
    return RunRecord(
        mix_id="shore-lo-nft.0",
        lc_name="shore",
        load_label="lo",
        policy=policy,
        tail_degradation=1.0195,
        weighted_speedup=1.2751,
        lc_tail_cycles=123456.75,
        baseline_tail_cycles=121111.25,
        deboosts=3,
        watermarks=1,
    )


class TestDocuments:
    def test_memory_only_round_trip(self):
        store = ResultStore(None)
        store.put("ab" * 32, {"kind": "run", "x": 1})
        doc = store.get("ab" * 32)
        assert doc["kind"] == "run"
        assert doc["x"] == 1
        # Every written document carries its schema generation and the
        # writing package version (what `prune` keys on).
        assert doc["schema"] == 1
        assert doc["repro"]
        assert "ab" * 32 in store
        assert "cd" * 32 not in store

    def test_disk_round_trip_across_instances(self, tmp_path):
        fingerprint = "f0" * 32
        ResultStore(tmp_path).put_record(fingerprint, _record())
        # A brand-new instance (fresh process, conceptually) sees it.
        reloaded = ResultStore(tmp_path).get_record(fingerprint)
        assert reloaded == _record()

    def test_floats_round_trip_exactly(self, tmp_path):
        fingerprint = "0d" * 32
        record = _record()
        ResultStore(tmp_path).put_record(fingerprint, record)
        reloaded = ResultStore(tmp_path).get_record(fingerprint)
        assert reloaded.tail_degradation == record.tail_degradation
        assert reloaded.lc_tail_cycles == record.lc_tail_cycles

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        fingerprint = "aa" * 32
        store = ResultStore(tmp_path)
        store.put_record(fingerprint, _record())
        path = tmp_path / fingerprint[:2] / f"{fingerprint}.json"
        path.write_text("{not json")
        assert ResultStore(tmp_path).get_record(fingerprint) is None

    def test_kind_mismatch_reads_as_miss(self, tmp_path):
        fingerprint = "bb" * 32
        store = ResultStore(tmp_path)
        store.put_record(fingerprint, _record())
        assert ResultStore(tmp_path).get_baseline(fingerprint) is None


class TestBaselines:
    def test_baseline_round_trip(self, tmp_path):
        fingerprint = "cc" * 32
        baseline = BaselineResult(
            tail95_cycles=100.5, p95_cycles=90.25, latencies=(1.0, 2.5, 3.75)
        )
        ResultStore(tmp_path).put_baseline(fingerprint, baseline)
        reloaded = ResultStore(tmp_path).get_baseline(fingerprint)
        assert reloaded == baseline


class TestMaintenance:
    def test_stats_and_clear(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put_record("dd" * 32, _record())
        store.put_baseline(
            "ee" * 32,
            BaselineResult(tail95_cycles=1.0, p95_cycles=1.0, latencies=(1.0,)),
        )
        stats = store.stats()
        assert stats["disk_entries"] == 2
        assert stats["by_kind"] == {"run": 1, "baseline": 1}
        assert stats["disk_bytes"] > 0
        assert store.clear() == 2
        assert store.stats()["disk_entries"] == 0
        assert store.get_record("dd" * 32) is None

    def test_prune_keeps_current_generation(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put_record("dd" * 32, _record())
        store.put_baseline(
            "ee" * 32,
            BaselineResult(tail95_cycles=1.0, p95_cycles=1.0, latencies=(1.0,)),
        )
        counts = store.prune()
        assert counts == {"kept": 2, "pruned": 0}
        assert ResultStore(tmp_path).get_record("dd" * 32) == _record()

    def test_prune_drops_stale_generations(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put_record("dd" * 32, _record())
        # A record written by a previous schema generation…
        stale = tmp_path / "ab" / ("ab" * 32 + ".json")
        stale.parent.mkdir(parents=True)
        stale.write_text(json.dumps({"kind": "run", "schema": 0}))
        # …one predating the stamp entirely, and one corrupt file.
        legacy = tmp_path / "cd" / ("cd" * 32 + ".json")
        legacy.parent.mkdir(parents=True)
        legacy.write_text(json.dumps({"kind": "run", "record": {}}))
        corrupt = tmp_path / "ef" / ("ef" * 32 + ".json")
        corrupt.parent.mkdir(parents=True)
        corrupt.write_text("{not json")
        counts = store.prune()
        assert counts == {"kept": 1, "pruned": 3}
        assert not stale.exists()
        assert not legacy.exists()
        assert not corrupt.exists()
        assert ResultStore(tmp_path).get_record("dd" * 32) == _record()

    def test_prune_sweeps_stale_memory_entries(self):
        store = ResultStore(None)
        store.put_record("dd" * 32, _record())
        store._mem["ab" * 32] = {"kind": "run", "schema": 0}
        store.prune()
        assert store.get("ab" * 32) is None
        assert store.get_record("dd" * 32) == _record()

    def test_new_records_stamped_with_package_version(self, tmp_path):
        import repro

        fingerprint = "aa" * 32
        ResultStore(tmp_path).put_record(fingerprint, _record())
        path = tmp_path / fingerprint[:2] / f"{fingerprint}.json"
        doc = json.loads(path.read_text())
        assert doc["repro"] == repro.__version__
        assert doc["schema"] == 1

    def test_stats_memory_only(self):
        store = ResultStore(None)
        store.put_record("ff" * 32, _record())
        stats = store.stats()
        assert stats["root"] is None
        assert stats["memory_entries"] == 1
        assert stats["disk_entries"] == 0

    def test_written_files_are_canonical_json(self, tmp_path):
        fingerprint = "ab" * 32
        ResultStore(tmp_path).put_record(fingerprint, _record())
        path = tmp_path / fingerprint[:2] / f"{fingerprint}.json"
        payload = json.loads(path.read_text())
        assert payload["kind"] == "run"
        assert payload["record"]["policy"] == "Ubik"


def _store_target(backend_name, tmp_path):
    if backend_name == "directory":
        return str(tmp_path / "tree")
    if backend_name == "sqlite":
        return f"sqlite://{tmp_path}/store.db"
    return None


@pytest.fixture(params=["directory", "sqlite", "memory"])
def any_store(request, tmp_path):
    store = ResultStore(_store_target(request.param, tmp_path))
    yield store
    store.close()


class TestEveryBackend:
    """The façade behaves identically regardless of the engine below."""

    def test_record_round_trip(self, any_store):
        any_store.put_record("ab" * 32, _record())
        assert any_store.get_record("ab" * 32) == _record()
        if any_store.persistent:
            reopened = ResultStore(any_store.share_target())
            assert reopened.get_record("ab" * 32) == _record()

    def test_baseline_round_trip(self, any_store):
        baseline = BaselineResult(
            tail95_cycles=100.5, p95_cycles=90.25, latencies=(1.0, 2.5, 3.75)
        )
        any_store.put_baseline("cd" * 32, baseline)
        assert any_store.get_baseline("cd" * 32) == baseline

    def test_discard_forgets_everywhere(self, any_store):
        any_store.put("ab" * 32, {"kind": "run", "x": 1})
        any_store.discard("ab" * 32)
        assert any_store.get("ab" * 32) is None
        assert "ab" * 32 not in any_store
        if any_store.persistent:
            assert ResultStore(any_store.share_target()).get("ab" * 32) is None

    def test_prune_counts(self, any_store):
        any_store.put_record("ab" * 32, _record())
        # A document written by a previous schema generation, planted
        # below the façade so ``put`` cannot re-stamp it.
        any_store.backend.put_doc("cd" * 32, '{"kind": "run", "schema": 0}')
        counts = any_store.prune()
        assert counts == {"kept": 1, "pruned": 1}
        assert any_store.get("cd" * 32) is None
        assert any_store.get_record("ab" * 32) == _record()

    def test_stats_name_their_backend(self, any_store):
        any_store.put_record("ab" * 32, _record())
        stats = any_store.stats()
        assert stats["backend"] == any_store.backend.name
        assert stats["documents"] == 1
        assert stats["by_kind"] == {"run": 1}
        if any_store.persistent:
            assert stats["disk_entries"] == 1
            assert stats["disk_bytes"] > 0
        else:
            assert stats["disk_entries"] == 0

    def test_len_and_fingerprints(self, any_store):
        any_store.put("ab" * 32, {"kind": "run"})
        any_store.put("cd" * 32, {"kind": "baseline"})
        assert len(any_store) == 2
        assert sorted(any_store.fingerprints()) == ["ab" * 32, "cd" * 32]

    def test_export_canonical_matches_directory_bytes(self, any_store, tmp_path):
        any_store.put_record("ab" * 32, _record())
        destination = tmp_path / "exported"
        assert any_store.export_canonical(destination) == 1
        reference = ResultStore(str(tmp_path / "reference"))
        reference.put_record("ab" * 32, _record())
        exported = destination / "ab" / ("ab" * 32 + ".json")
        written = tmp_path / "reference" / "ab" / ("ab" * 32 + ".json")
        assert exported.read_bytes() == written.read_bytes()


class TestDefaultRoot:
    def test_disabled_by_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", "0")
        assert default_store_root() is None

    def test_override_by_env(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "s"))
        assert default_store_root() == tmp_path / "s"

    def test_default_under_cache_home(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        assert default_store_root() == tmp_path / "repro-ubik"
