"""Tests for the async executor and the batched spec scheduler."""

import json
from dataclasses import dataclass
from typing import ClassVar, Optional

import pytest

from repro.experiments.common import ExperimentScale
from repro.runtime import (
    AsyncExecutor,
    ParallelExecutor,
    PolicySpec,
    ProgressEvent,
    ResultStore,
    SchedulerCancelled,
    SerialExecutor,
    Session,
    SpecScheduler,
    TaskSpec,
)

TINY = ExperimentScale(
    requests=40,
    lc_names=("masstree",),
    loads=(0.2,),
    combos=("nft", "sss"),
    mixes_per_combo=1,
)

POLICIES = (
    PolicySpec.of("static_lc", label="StaticLC"),
    PolicySpec.of("ubik", label="Ubik", slack=0.05),
)


def _square(x: int) -> int:
    """Module-level so the process pool can pickle it."""
    return x * x


@dataclass(frozen=True)
class DoubleSpec(TaskSpec):
    """A trivial picklable task: doubles its value (cheap to run)."""

    kind: ClassVar[str] = "test_double"
    result_type: ClassVar[Optional[type]] = None

    value: int

    def compute(self, store):
        return {"value": self.value * 2}


class TestAsyncExecutor:
    def test_maps_in_order_across_processes(self):
        assert AsyncExecutor(2).map(_square, list(range(8))) == [
            x * x for x in range(8)
        ]

    def test_single_worker_stays_in_process(self):
        assert AsyncExecutor(1).map(_square, [3, 4]) == [9, 16]

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            AsyncExecutor(0)

    def test_window_bounds_submissions(self):
        # More items than window: everything still completes, in order.
        executor = AsyncExecutor(2, window=2)
        assert executor.map(_square, list(range(12))) == [
            x * x for x in range(12)
        ]


class TestSchedulerBasics:
    def test_results_in_spec_order(self, tmp_path):
        scheduler = SpecScheduler(store=ResultStore(tmp_path), jobs=2)
        results = scheduler.run([DoubleSpec(value=v) for v in (5, 1, 3)])
        assert results == [{"value": 10}, {"value": 2}, {"value": 6}]

    def test_store_hits_skip_workers(self, tmp_path):
        store = ResultStore(tmp_path)
        specs = [DoubleSpec(value=v) for v in range(4)]
        SpecScheduler(store=store, jobs=2).run(specs)
        events = []
        again = SpecScheduler(
            store=ResultStore(tmp_path), jobs=2, progress=events.append
        ).run(specs)
        assert again == [{"value": 2 * v} for v in range(4)]
        final = events[-1]
        assert final.phase == "done"
        assert final.cached == 4
        assert final.submitted == 0

    def test_in_flight_duplicates_deduplicated(self, tmp_path):
        events = []
        specs = [DoubleSpec(value=7)] * 5 + [DoubleSpec(value=8)]
        results = SpecScheduler(
            store=ResultStore(tmp_path), jobs=2, progress=events.append
        ).run(specs)
        assert results == [{"value": 14}] * 5 + [{"value": 16}]
        final = events[-1]
        assert final.submitted == 2  # one per unique fingerprint
        assert final.deduped == 4
        # Every queue entry counts as resolved, dedup or not: the final
        # event reports the batch finished, with no leftover ETA.
        assert final.done == final.total == 6
        assert final.eta_s is None

    def test_progress_events_count_up_with_eta(self, tmp_path):
        events = []
        SpecScheduler(
            store=ResultStore(tmp_path), jobs=2, progress=events.append
        ).run([DoubleSpec(value=v) for v in range(6)])
        phases = [e.phase for e in events]
        assert phases[-1] == "done"
        assert phases.count("completed") == 6
        dones = [e.done for e in events if e.phase == "completed"]
        assert dones == sorted(dones)
        assert all(e.total == 6 for e in events)
        # Any mid-drain completion has an extrapolated ETA.
        mid = [e for e in events if e.phase == "completed" and e.done < 6]
        assert all(e.eta_s is not None for e in mid)

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            SpecScheduler(jobs=0)

    def test_str_event_is_human_readable(self):
        event = ProgressEvent(
            phase="completed",
            total=10,
            submitted=4,
            cached=2,
            completed=3,
            in_flight=1,
            deduped=0,
            elapsed_s=1.5,
            eta_s=2.5,
        )
        assert "5/10 done" in str(event)
        assert "eta" in str(event)


class TestCancellation:
    def test_cancel_mid_batch_raises_and_store_stays_clean(self, tmp_path):
        store = ResultStore(tmp_path)
        scheduler = SpecScheduler(store=store, jobs=2, window=2)

        def cancel_on_first_completion(event: ProgressEvent) -> None:
            if event.phase == "completed":
                scheduler.cancel()

        scheduler.progress = cancel_on_first_completion
        specs = [DoubleSpec(value=v) for v in range(12)]
        with pytest.raises(SchedulerCancelled) as excinfo:
            scheduler.run(specs)
        assert excinfo.value.completed < len(specs)

        # Whatever landed on disk before the cancel is wholly valid…
        for path in tmp_path.glob("??/*.json"):
            doc = json.loads(path.read_text())
            assert doc["kind"] == "test_double"
        # …and a fresh scheduler finishes the batch from the store,
        # byte-identical to an uninterrupted serial evaluation.
        resumed = SpecScheduler(store=ResultStore(tmp_path), jobs=2).run(specs)
        assert resumed == [spec.execute(None) for spec in specs]


def _store_bytes(root):
    """Map fingerprint -> raw document bytes for a store directory."""
    return {
        path.stem: path.read_bytes() for path in root.glob("??/*.json")
    }


class TestDeterminismMatrix:
    """Same batch, every engine, 1/2/4 workers: identical store bytes."""

    @pytest.fixture(scope="class")
    def reference(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("serial-ref")
        session = Session(store=ResultStore(root), executor=SerialExecutor())
        records = session.run_many(session.sweep_specs(TINY, POLICIES))
        return records, _store_bytes(root)

    @pytest.mark.parametrize(
        "make_executor_under_test",
        [
            lambda: SerialExecutor(),
            lambda: ParallelExecutor(2),
            lambda: AsyncExecutor(1),
            lambda: AsyncExecutor(2),
            lambda: AsyncExecutor(4),
        ],
        ids=["serial", "parallel-2", "async-1", "async-2", "async-4"],
    )
    def test_records_and_store_bytes_identical(
        self, reference, make_executor_under_test, tmp_path
    ):
        ref_records, ref_bytes = reference
        session = Session(
            store=ResultStore(tmp_path), executor=make_executor_under_test()
        )
        records = session.run_many(session.sweep_specs(TINY, POLICIES))
        assert records == ref_records
        assert _store_bytes(tmp_path) == ref_bytes

    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_scheduler_matches_serial(self, reference, jobs, tmp_path):
        ref_records, ref_bytes = reference
        session = Session(store=ResultStore(tmp_path), jobs=jobs)
        specs = session.sweep_specs(TINY, POLICIES)
        records = session.run_many(specs, scheduler="async")
        assert records == ref_records
        assert _store_bytes(tmp_path) == ref_bytes

    @pytest.mark.parametrize(
        "backend_name", ["directory", "sqlite", "memory", "http"]
    )
    def test_every_backend_matches_serial_reference(
        self, reference, backend_name, tmp_path
    ):
        """Same batch through each storage engine: identical records,
        and identical canonical exports (the cross-backend byte-parity
        contract, exercised by a real scheduler run)."""
        import contextlib

        from fault_injection import live_server

        ref_records, ref_bytes = reference
        stack = contextlib.ExitStack()
        if backend_name == "directory":
            store = ResultStore(str(tmp_path / "tree"))
        elif backend_name == "sqlite":
            store = ResultStore(f"sqlite://{tmp_path}/store.db")
        elif backend_name == "http":
            # Workers in other processes reach the parent's served
            # store over TCP via share_target().
            server = stack.enter_context(
                live_server(f"sqlite://{tmp_path}/served.db")
            )
            store = ResultStore(server.url)
        else:
            store = ResultStore(None)
        if store.persistent:
            # Workers in other processes write to the shared target.
            session = Session(store=store, jobs=2)
            records = session.run_many(
                session.sweep_specs(TINY, POLICIES), scheduler="async"
            )
        else:
            # A memory store lives in this process only, so the batch
            # must run here for its documents to exist at all.
            session = Session(store=store, executor=SerialExecutor())
            records = session.run_many(session.sweep_specs(TINY, POLICIES))
        assert records == ref_records
        export = tmp_path / "export"
        store.export_canonical(export)
        assert _store_bytes(export) == ref_bytes
        store.close()
        stack.close()


class TestSessionSchedulerWiring:
    def test_session_default_async_scheduler(self, tmp_path):
        events = []
        session = Session(
            store=ResultStore(tmp_path),
            jobs=2,
            scheduler="async",
            progress=events.append,
        )
        results = session.run_many([DoubleSpec(value=v) for v in range(3)])
        assert results == [{"value": 0}, {"value": 2}, {"value": 4}]
        assert events and events[-1].phase == "done"

    def test_unknown_scheduler_rejected(self, tmp_path):
        session = Session(store=ResultStore(tmp_path))
        with pytest.raises(ValueError, match="unknown scheduler"):
            session.run_many([DoubleSpec(value=1)], scheduler="warp")

    def test_scheduler_instance_passed_through(self, tmp_path):
        store = ResultStore(tmp_path)
        session = Session(store=store)
        scheduler = SpecScheduler(store=store, jobs=2)
        results = session.run_many(
            [DoubleSpec(value=9)], scheduler=scheduler
        )
        assert results == [{"value": 18}]
