"""Many clients, one served store: the final corpus is the serial oracle.

The runtime's real write pattern is racy by construction — a sweep's
workers all put the same canonical text under the same content
fingerprint, and blob writes interleave freely.  Correctness therefore
means: however many threads or processes hammer one served store, the
corpus they leave is byte-identical to applying the operations
serially against a local engine.  These tests pin that, with and
without a fault injector in the wire.
"""

import json
import multiprocessing
import random
import threading

from fault_injection import FaultSchedule, live_server
from repro.runtime.backends import HttpBackend, make_backend

#: The corpus every scenario must converge to: duplicate-fingerprint
#: document puts (identical canonical text, as the runtime guarantees)
#: and interleaved blob writes.
DOCS = {
    f"{i:02x}" * 32: json.dumps({"kind": "run", "i": i}, sort_keys=True)
    for i in range(16)
}
BLOBS = {f"{i + 16:02x}" * 32: bytes([i]) * (64 + i) for i in range(16)}


def _client(url, retries=8):
    return HttpBackend(url.replace("http://", ""), retries=retries, backoff=0.001)


def _ops(seed):
    """One worker's operation list: every doc and blob, shuffled — so
    every key is written by every worker, in a different order each."""
    ops = [("doc", fp, text) for fp, text in DOCS.items()]
    ops += [("blob", key, payload) for key, payload in BLOBS.items()]
    random.Random(seed).shuffle(ops)
    return ops


def _apply(backend, seed):
    for kind, key, value in _ops(seed):
        if kind == "doc":
            backend.put_doc(key, value)
        else:
            backend.put_blob(key, value)


def _corpus(backend):
    """The full logical corpus: doc texts and blob bytes by key."""
    docs = {fp: backend.get_doc(fp) for fp in backend.iter_docs()}
    blobs = {key: backend.get_blob(key) for key in backend.iter_blobs()}
    return docs, blobs


def _serial_oracle():
    oracle = make_backend(None)
    _apply(oracle, seed=0)
    return _corpus(oracle)


def _pool_hammer(job):
    """Process-pool worker: open the served store by URL and hammer it."""
    url, seed = job
    client = _client(url)
    _apply(client, seed)
    client.close()
    return seed


class TestThreadStress:
    def test_threads_converge_to_serial_oracle(self, tmp_path):
        with live_server(f"sqlite://{tmp_path}/served.db") as server:
            workers = [
                threading.Thread(
                    target=_apply, args=(_client(server.url), seed)
                )
                for seed in range(8)
            ]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join(timeout=60)
            assert not any(w.is_alive() for w in workers)
            assert _corpus(_client(server.url)) == _serial_oracle()

    def test_threads_with_faults_converge_too(self, tmp_path):
        schedule = FaultSchedule(77, drop=0.1, error=0.1, truncate=0.05)
        with live_server(
            f"sqlite://{tmp_path}/served.db", injector=schedule
        ) as server:
            workers = [
                threading.Thread(
                    target=_apply, args=(_client(server.url, retries=12), seed)
                )
                for seed in range(4)
            ]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join(timeout=120)
            assert not any(w.is_alive() for w in workers)
            assert _corpus(_client(server.url)) == _serial_oracle()
        assert schedule.failure_count > 0

    def test_one_shared_client_across_threads(self, tmp_path):
        # The connection pool itself is the racy part here: one client
        # object, eight threads.
        with live_server(f"sqlite://{tmp_path}/served.db") as server:
            shared = _client(server.url)
            workers = [
                threading.Thread(target=_apply, args=(shared, seed))
                for seed in range(8)
            ]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join(timeout=60)
            assert not any(w.is_alive() for w in workers)
            assert _corpus(shared) == _serial_oracle()
            shared.close()


class TestProcessStress:
    def test_process_pool_converges_to_serial_oracle(self, tmp_path):
        with live_server(f"sqlite://{tmp_path}/served.db") as server:
            jobs = [(server.url, seed) for seed in range(4)]
            ctx = multiprocessing.get_context("fork")
            with ctx.Pool(4) as pool:
                done = pool.map(_pool_hammer, jobs)
            assert sorted(done) == [0, 1, 2, 3]
            assert _corpus(_client(server.url)) == _serial_oracle()

    def test_forked_worker_discards_inherited_connections(self, tmp_path):
        # A client whose pool already holds live keep-alive connections
        # is inherited across fork(); the child must open its own TCP
        # streams rather than interleave on the parent's.
        with live_server(f"sqlite://{tmp_path}/served.db") as server:
            client = _client(server.url)
            _apply(client, seed=1)  # parent uses it: pool is warm
            _INHERITED["client"] = client
            try:
                ctx = multiprocessing.get_context("fork")
                with ctx.Pool(1) as pool:  # fork inherits _INHERITED
                    assert pool.apply(_run_inherited)
            finally:
                _INHERITED.clear()
            # The parent's handle still works afterwards.
            assert _corpus(client) == _serial_oracle()
            client.close()


#: Fork-inheritance plumbing for the test above (set pre-fork).
_INHERITED = {}


def _run_inherited():
    """Runs in the forked child with the parent's client object."""
    client = _INHERITED["client"]
    _apply(client, seed=99)
    docs, blobs = _corpus(client)
    return docs == DOCS and blobs == BLOBS
