"""Seeded fault injection for store-backend tests.

The http engine's correctness claim is not "it works on a good
network" but "a flaky network cannot corrupt the corpus": retries
never double-apply visible effects, partial writes never surface, and
exports through the hop stay byte-identical to local engines.  This
module is the harness those claims are proven against, reusable by any
backend test:

:class:`FaultSchedule`
    A seeded decision stream: each consulted request is passed through,
    dropped, delayed, failed with a 5xx, or answered with a truncated
    body, at configured rates.  Deterministic for a given seed, and
    bounded — after ``max_consecutive`` back-to-back faults the next
    request is forced through, so a client with a finite retry budget
    always makes progress.  A schedule doubles as the
    ``StoreHTTPServer.fault_injector`` hook (it is callable with the
    handler's ``(method, path)``).

:class:`FlakyBackend`
    An engine wrapper that consults a schedule around every operation —
    the middleware flavor of the same idea.  ``fail_after=True`` raises
    *after* the wrapped engine applied the operation (the
    "committed but the acknowledgement was lost" case, the one that
    smokes out double-apply bugs); ``fail_after=False`` raises before.
    Served behind a :class:`StoreHTTPServer`, its faults surface as
    retryable 500s.  The ``applied`` counter records every operation
    that actually reached the engine, so tests can pin exactly-once
    *visible* effects against any number of injected failures.

:func:`live_server`
    A context manager running a served store on an ephemeral port in a
    daemon thread, yielding the server (``server.url`` is what clients
    connect to) and guaranteeing shutdown.

:class:`NodeOutage`
    Whole-node death, as an injector: while the node is down *every*
    request is dropped — including over already-established keep-alive
    connections, which an in-process ``server_close()`` alone would
    keep serving.  Kill at a scheduled request count (``kill_after``)
    or by hand (:meth:`~NodeOutage.kill`/:meth:`~NodeOutage.revive`).
    This is the harness behind the cluster fabric's node-loss wall.
"""

from __future__ import annotations

import contextlib
import threading
import time
from collections import Counter
from typing import Any, Iterator, Optional, Tuple, Union

from repro.runtime.backends import serve_store
from repro.runtime.backends.base import StoreBackend
from repro.runtime.backends.http import StoreHTTPServer

__all__ = [
    "FaultInjected",
    "FaultSchedule",
    "FlakyBackend",
    "NodeOutage",
    "live_server",
]

#: Actions that fail the request (a delay is injected but still succeeds).
FAILURE_ACTIONS = ("drop", "error", "truncate")


class FaultInjected(ConnectionError):
    """The error a :class:`FlakyBackend` raises on an injected fault."""


class FaultSchedule:
    """A seeded, rate-configured, thread-safe fault decision stream."""

    def __init__(
        self,
        seed: int,
        drop: float = 0.0,
        error: float = 0.0,
        truncate: float = 0.0,
        delay: float = 0.0,
        delay_seconds: float = 0.002,
        max_consecutive: int = 3,
    ):
        import random

        self.rates = {
            "drop": float(drop),
            "error": float(error),
            "truncate": float(truncate),
            "delay": float(delay),
        }
        if sum(self.rates.values()) > 1.0:
            raise ValueError("fault rates must sum to at most 1.0")
        self.delay_seconds = float(delay_seconds)
        self.max_consecutive = int(max_consecutive)
        self.total = 0
        self.injected = 0
        self.by_action: Counter = Counter()
        self._rng = random.Random(seed)
        self._consecutive = 0
        self._lock = threading.Lock()

    def decide(self) -> Union[None, str, Tuple[str, float]]:
        """The next request's fate.

        Returns ``None`` (pass through), ``"drop"``, ``"error"``,
        ``"truncate"``, or ``("delay", seconds)``.  At most
        ``max_consecutive`` failures in a row: the request after them
        is forced through, so a finite retry budget always suffices.
        """
        with self._lock:
            self.total += 1
            if self._consecutive >= self.max_consecutive:
                self._consecutive = 0
                return None
            roll = self._rng.random()
            edge = 0.0
            for name in ("drop", "error", "truncate", "delay"):
                edge += self.rates[name]
                if roll < edge:
                    self.injected += 1
                    self.by_action[name] += 1
                    if name == "delay":
                        return ("delay", self.delay_seconds)
                    self._consecutive += 1
                    return name
            self._consecutive = 0
            return None

    def __call__(self, method: str, path: str) -> Any:
        """The ``StoreHTTPServer.fault_injector`` signature."""
        return self.decide()

    @property
    def failure_count(self) -> int:
        """Requests that were dropped, errored, or truncated."""
        return sum(self.by_action[name] for name in FAILURE_ACTIONS)

    @property
    def failure_fraction(self) -> float:
        """Failed requests as a fraction of all consulted requests."""
        return self.failure_count / self.total if self.total else 0.0


class FlakyBackend(StoreBackend):
    """An engine wrapper injecting faults around every operation.

    Faults raise :class:`FaultInjected`; behind a served store that
    becomes a retryable 500.  ``fail_after=True`` applies the wrapped
    operation *first* — the lost-acknowledgement case a retrying client
    must tolerate without double-applying visible effects.
    """

    name = "flaky"

    def __init__(
        self,
        engine: StoreBackend,
        schedule: FaultSchedule,
        fail_after: bool = False,
    ):
        self.engine = engine
        self.schedule = schedule
        self.fail_after = fail_after
        self.persistent = engine.persistent
        #: Operations that actually reached the wrapped engine.
        self.applied: Counter = Counter()

    @property
    def url(self) -> str:
        return self.engine.url

    def _guarded(self, op: str, apply):
        action = self.schedule.decide()
        if isinstance(action, tuple) and action and action[0] == "delay":
            time.sleep(float(action[1]))
            action = None
        failing = action in FAILURE_ACTIONS
        if failing and not self.fail_after:
            raise FaultInjected(f"injected {action} before {op}")
        result = apply()
        self.applied[op] += 1
        if failing:
            raise FaultInjected(f"injected {action} after {op}")
        return result

    # Documents -----------------------------------------------------------
    def get_doc(self, fingerprint: str):
        return self._guarded("get_doc", lambda: self.engine.get_doc(fingerprint))

    def put_doc(self, fingerprint: str, text: str) -> None:
        self._guarded("put_doc", lambda: self.engine.put_doc(fingerprint, text))

    def delete_doc(self, fingerprint: str) -> None:
        self._guarded("delete_doc", lambda: self.engine.delete_doc(fingerprint))

    def iter_docs(self) -> Iterator[str]:
        return self._guarded("iter_docs", lambda: list(self.engine.iter_docs()))

    def doc_count(self) -> int:
        return self._guarded("doc_count", self.engine.doc_count)

    # Blobs ---------------------------------------------------------------
    def get_blob(self, key: str):
        return self._guarded("get_blob", lambda: self.engine.get_blob(key))

    def put_blob(self, key: str, payload: bytes) -> None:
        self._guarded("put_blob", lambda: self.engine.put_blob(key, payload))

    def delete_blob(self, key: str) -> None:
        self._guarded("delete_blob", lambda: self.engine.delete_blob(key))

    def iter_blobs(self) -> Iterator[str]:
        return self._guarded("iter_blobs", lambda: list(self.engine.iter_blobs()))

    def blob_count(self) -> int:
        return self._guarded("blob_count", self.engine.blob_count)

    # Maintenance ---------------------------------------------------------
    def clear_documents(self) -> int:
        return self._guarded("clear_documents", self.engine.clear_documents)

    def clear_blobs(self) -> int:
        return self._guarded("clear_blobs", self.engine.clear_blobs)

    def disk_bytes(self) -> int:
        return self._guarded("disk_bytes", self.engine.disk_bytes)

    def close(self) -> None:
        self.engine.close()


class NodeOutage:
    """A node-level kill/revive schedule (``fault_injector`` hook).

    While dead, every request is answered with ``"drop"`` — the wire
    goes dark exactly as it does when the process is gone, even on
    keep-alive connections a client pooled before the death.  An
    optional inner ``schedule`` (e.g. a flaky-network
    :class:`FaultSchedule`) is consulted while the node is alive, so
    node loss composes with wire faults.

    ``kill_after=N`` kills the node when it has served N requests —
    the deterministic "mid-run" trigger the golden node-loss wall
    uses; ``kill()``/``revive()`` flip it by hand.
    """

    def __init__(
        self,
        kill_after: Optional[int] = None,
        schedule: Optional[FaultSchedule] = None,
    ):
        self.kill_after = kill_after
        self.schedule = schedule
        self.total = 0
        self.dropped = 0
        self.dead = False
        self._lock = threading.Lock()

    def kill(self) -> None:
        """The node goes dark (idempotent)."""
        with self._lock:
            self.dead = True

    def revive(self) -> None:
        """The node answers again; the scheduled kill is spent."""
        with self._lock:
            self.dead = False
            self.kill_after = None

    def __call__(self, method: str, path: str) -> Any:
        with self._lock:
            self.total += 1
            if (
                not self.dead
                and self.kill_after is not None
                and self.total > self.kill_after
            ):
                self.dead = True
            if self.dead:
                self.dropped += 1
                return "drop"
        if self.schedule is not None:
            return self.schedule(method, path)
        return None


@contextlib.contextmanager
def live_server(
    target: Any = "memory://",
    injector: Optional[FaultSchedule] = None,
    host: str = "127.0.0.1",
):
    """A served store on an ephemeral port, shut down on exit.

    ``target`` is anything ``make_backend`` accepts (URL, path, or a
    live engine — e.g. a :class:`FlakyBackend`); ``injector`` installs
    a wire-level fault hook on the server.
    """
    server: StoreHTTPServer = serve_store(target, host=host, port=0)
    server.fault_injector = injector
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)
