"""Tests for the serial and process-pool executors."""

import pytest

import os

from repro.runtime.executors import (
    ParallelExecutor,
    SerialExecutor,
    default_jobs,
    make_executor,
    resolve_jobs,
)


def _square(x: int) -> int:
    """Module-level so the process pool can pickle it."""
    return x * x


class TestSerialExecutor:
    def test_maps_in_order(self):
        assert SerialExecutor().map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_empty(self):
        assert SerialExecutor().map(_square, []) == []


class TestParallelExecutor:
    def test_maps_in_order_across_processes(self):
        result = ParallelExecutor(2).map(_square, list(range(8)))
        assert result == [x * x for x in range(8)]

    def test_single_item_stays_in_process(self):
        assert ParallelExecutor(4).map(_square, [5]) == [25]

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ParallelExecutor(0)


class TestDefaultJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_jobs() == 1
        assert isinstance(make_executor(), SerialExecutor)

    def test_env_selects_parallel(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert default_jobs() == 3
        executor = make_executor()
        assert isinstance(executor, ParallelExecutor)
        assert executor.jobs == 3

    def test_zero_means_all_cores(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert default_jobs() >= 1

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            default_jobs()

    def test_explicit_jobs_override_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert isinstance(make_executor(1), SerialExecutor)
        assert make_executor(2).jobs == 2

    def test_negative_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "-2")
        with pytest.raises(ValueError, match="non-negative"):
            default_jobs()

    def test_float_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "2.5")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            default_jobs()


class TestMakeExecutorEdgeCases:
    def test_negative_jobs_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            make_executor(-1)

    def test_non_integer_jobs_rejected(self):
        with pytest.raises(ValueError, match="integer"):
            make_executor(2.5)
        with pytest.raises(ValueError, match="integer"):
            make_executor(True)

    def test_zero_means_all_cores(self):
        executor = make_executor(0)
        cores = os.cpu_count() or 1
        assert getattr(executor, "jobs", 1) == (cores if cores > 1 else 1)
        assert resolve_jobs(0) == cores

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown executor kind"):
            make_executor(2, kind="quantum")

    def test_explicit_kinds(self):
        from repro.runtime.scheduler import AsyncExecutor

        assert isinstance(make_executor(4, kind="serial"), SerialExecutor)
        assert isinstance(make_executor(1, kind="parallel"), ParallelExecutor)
        async_executor = make_executor(3, kind="async")
        assert isinstance(async_executor, AsyncExecutor)
        assert async_executor.jobs == 3
