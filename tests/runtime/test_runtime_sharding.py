"""Unit tests for intra-run trace sharding (repro.runtime.sharding)."""

import pytest

from repro.runtime import (
    MixRef,
    PolicySpec,
    ResultStore,
    RunSpec,
    SerialExecutor,
    Session,
)
from repro.runtime.sharding import (
    ShardSpec,
    interleave_shards,
    merge_shard_results,
    plan_shards,
    resolve_shards,
    shard_instances,
)
from repro.sim.config import CMPConfig
from repro.sim.mix_runner import LC_INSTANCES, MixRunner
from repro.workloads.latency_critical import make_lc_workload


def small_spec(policy="ubik", load=0.2, **kwargs):
    policy_kwargs = {"slack": 0.05} if policy == "ubik" else {}
    return RunSpec(
        mix=MixRef(lc_name="masstree", load=load, combo="nft"),
        policy=PolicySpec.of(policy, **policy_kwargs),
        requests=kwargs.pop("requests", 24),
        **kwargs,
    )


class TestShardPlanning:
    def test_contiguous_cover_without_overlap(self):
        for count in range(1, 7):
            chunks = shard_instances(5, count)
            flat = [i for chunk in chunks for i in chunk]
            assert flat == list(range(5))
            assert all(chunk for chunk in chunks)

    def test_clamped_to_instance_count(self):
        assert shard_instances(3, 99) == [(0,), (1,), (2,)]
        assert shard_instances(3, 0) == [(0, 1, 2)]

    def test_plan_matches_run_identity(self):
        spec = small_spec()
        shards = plan_shards(spec, 2)
        assert [s.instances for s in shards] == [(0, 1), (2,)]
        assert {s.num_shards for s in shards} == {2}
        base_fp = spec.baseline_spec().fingerprint()
        assert all(s.base_spec().fingerprint() == base_fp for s in shards)

    def test_plan_rejects_task_specs(self):
        with pytest.raises(TypeError):
            plan_shards(object(), 2)

    def test_shard_fingerprints_distinct_by_slice(self):
        spec = small_spec()
        fps = {s.fingerprint() for s in plan_shards(spec, 3)}
        assert len(fps) == 3

    def test_invalid_shard_specs_rejected(self):
        with pytest.raises(ValueError):
            ShardSpec(lc_name="masstree", instances=())
        with pytest.raises(ValueError):
            ShardSpec(lc_name="", instances=(0,))
        with pytest.raises(ValueError):
            ShardSpec(
                lc_name="masstree", instances=(0,), shard_index=2, num_shards=2
            )


class TestResolveShards:
    def test_none_and_one_mean_unsharded(self):
        assert resolve_shards(None) == 1
        assert resolve_shards(1) == 1
        assert resolve_shards("1") == 1

    def test_integers_clamped_to_instances(self):
        assert resolve_shards(2) == 2
        assert resolve_shards(16) == LC_INSTANCES

    def test_auto_uses_idle_worker_budget(self):
        # A lone run on a wide pool shards fully ...
        assert resolve_shards("auto", jobs=8, grid_size=1) == LC_INSTANCES
        # ... a wide grid saturates the pool already.
        assert resolve_shards("auto", jobs=4, grid_size=40) == 1
        assert resolve_shards("auto", jobs=1, grid_size=1) == 1

    def test_rejects_junk(self):
        for bad in (0, -3, "zero", 2.5, True):
            with pytest.raises(ValueError):
                resolve_shards(bad)


class TestInterleaving:
    def test_round_robin_across_specs(self):
        a = plan_shards(small_spec(policy="lru"), 3)
        b = plan_shards(small_spec(policy="ucp", load=0.6), 2)
        queue = interleave_shards([a, b])
        assert [(s.shard_index, s.load) for s in queue] == [
            (0, 0.2),
            (0, 0.6),
            (1, 0.2),
            (1, 0.6),
            (2, 0.2),
        ]

    def test_empty_plans(self):
        assert interleave_shards([]) == []


class TestMerge:
    def make_results(self, shards, store=None):
        return [s.compute(store) for s in shards]

    def test_merge_equals_serial_baseline(self):
        spec = small_spec()
        runner = MixRunner(config=CMPConfig(), requests=spec.requests, seed=spec.seed)
        reference = runner.baseline(make_lc_workload("masstree"), 0.2)
        for count in (1, 2, 3):
            merged = merge_shard_results(
                self.make_results(plan_shards(spec, count))
            )
            assert merged.baseline == reference
            assert merged.instance_count == LC_INSTANCES
            assert merged.shard_count == count

    def test_merge_is_order_independent(self):
        spec = small_spec()
        results = self.make_results(plan_shards(spec, 3))
        forward = merge_shard_results(results)
        backward = merge_shard_results(list(reversed(results)))
        assert forward.baseline == backward.baseline

    def test_merge_rejects_duplicates_and_gaps(self):
        spec = small_spec()
        results = self.make_results(plan_shards(spec, 2))
        with pytest.raises(ValueError, match="more than one shard"):
            merge_shard_results(results + [results[0]])
        with pytest.raises(ValueError, match="expected exactly"):
            merge_shard_results(results[1:])
        with pytest.raises(ValueError, match="no shard slices"):
            merge_shard_results([])

    def test_shard_documents_record_topology(self):
        spec = small_spec()
        shard = plan_shards(spec, 2)[1]
        store = ResultStore(None)
        result = shard.execute(store)
        assert result["shard_index"] == 1
        assert result["num_shards"] == 2
        assert result["instances"] == [2]
        doc = store.get(shard.fingerprint())
        assert doc["kind"] == "baseline_shard"
        assert doc["result"]["num_shards"] == 2
        # Utilization stats merge alongside the latency pools.
        merged = merge_shard_results(
            self.make_results(plan_shards(spec, 2))
        )
        assert merged.requests_served > 0
        assert merged.activations > 0


class TestSessionSharding:
    def test_sharded_record_equals_unsharded(self):
        spec = small_spec()
        plain = Session(store=ResultStore(None), executor=SerialExecutor())
        sharded = Session(
            store=ResultStore(None), executor=SerialExecutor(), shards=3
        )
        assert sharded.run(spec) == plain.run(spec)

    def test_sharded_baseline_store_entry_matches(self):
        spec = small_spec()
        plain_store = ResultStore(None)
        shard_store = ResultStore(None)
        Session(store=plain_store, executor=SerialExecutor()).run(spec)
        Session(store=shard_store, executor=SerialExecutor(), shards=2).run(spec)
        base_fp = spec.baseline_spec().fingerprint()
        assert plain_store.get_baseline(base_fp) == shard_store.get_baseline(
            base_fp
        )

    def test_shared_baseline_planned_once_and_shards_reclaimed(self):
        # Two specs differing only in policy share one baseline: the
        # shard phase must not duplicate its work — and once the merged
        # baseline is persisted, the shard documents are reclaimed.
        class RecordingStore(ResultStore):
            def __init__(self):
                super().__init__(None)
                self.put_kinds = []

            def put(self, fingerprint, payload):
                self.put_kinds.append(payload.get("kind"))
                super().put(fingerprint, payload)

        store = RecordingStore()
        session = Session(store=store, executor=SerialExecutor(), shards=2)
        records = session.run_many(
            [small_spec(policy="lru"), small_spec(policy="ucp")]
        )
        assert len(records) == 2
        assert store.put_kinds.count("baseline_shard") == 2  # one plan
        assert store.put_kinds.count("baseline") == 1
        assert store.put_kinds.count("run") == 2
        remaining = {doc["kind"] for doc in store._mem.values()}
        assert "baseline_shard" not in remaining  # reclaimed post-merge
        assert {"baseline", "run"} <= remaining

    def test_sharded_store_on_disk_keeps_no_shard_documents(self, tmp_path):
        import json

        store = ResultStore(tmp_path)
        Session(store=store, executor=SerialExecutor(), shards=3).run(
            small_spec()
        )
        kinds = sorted(
            json.loads(p.read_text())["kind"]
            for p in tmp_path.glob("??/*.json")
        )
        assert kinds == ["baseline", "run"]

    @pytest.mark.parametrize(
        "backend_name", ["directory", "sqlite", "memory", "http"]
    )
    def test_shard_reclaim_on_every_backend(self, backend_name, tmp_path):
        # The reclaim sweep runs through the façade's discard path, so
        # every engine must end up with the same post-merge corpus —
        # including a store reached over the network hop.
        import contextlib

        from fault_injection import live_server

        stack = contextlib.ExitStack()
        if backend_name == "directory":
            store = ResultStore(str(tmp_path / "tree"))
        elif backend_name == "sqlite":
            store = ResultStore(f"sqlite://{tmp_path}/store.db")
        elif backend_name == "http":
            server = stack.enter_context(
                live_server(f"sqlite://{tmp_path}/served.db")
            )
            store = ResultStore(server.url)
        else:
            store = ResultStore(None)
        Session(store=store, executor=SerialExecutor(), shards=2).run(
            small_spec()
        )
        import json

        kinds = sorted(
            json.loads(store.backend.get_doc(fp))["kind"]
            for fp in store.backend.iter_docs()
        ) if store.persistent else sorted(
            doc["kind"] for doc in store._mem.values()
        )
        assert kinds == ["baseline", "run"]
        store.close()
        stack.close()

    def test_memory_store_with_process_pool_skips_shard_phase(self):
        # A memory-only store cannot carry merged baselines into pool
        # workers, so sharding there would double the baseline work;
        # the session falls back to the (identical) unsharded path.
        from repro.runtime import ParallelExecutor

        class RecordingStore(ResultStore):
            def __init__(self):
                super().__init__(None)
                self.put_kinds = []

            def put(self, fingerprint, payload):
                self.put_kinds.append(payload.get("kind"))
                super().put(fingerprint, payload)

        spec = small_spec()
        store = RecordingStore()
        session = Session(store=store, executor=ParallelExecutor(2), shards=3)
        record = session.run(spec)
        assert "baseline_shard" not in store.put_kinds
        plain = Session(store=ResultStore(None), executor=SerialExecutor())
        assert record == plain.run(spec)

    def test_auto_budget_counts_only_store_misses(self):
        # A mostly-cached grid must still shard its lone miss: the
        # auto heuristic divides the worker budget by the number of
        # specs that actually simulate, not the raw grid size.
        specs = [small_spec(policy=p) for p in ("lru", "ucp", "static_lc")]
        store = ResultStore(None)
        warm = Session(store=store, executor=SerialExecutor())
        warm.run_many(specs[:2])  # two of three now cached

        class RecordingStore(ResultStore):
            def __init__(self, seed_mem):
                super().__init__(None)
                self._mem.update(seed_mem)
                self.put_kinds = []

            def put(self, fingerprint, payload):
                self.put_kinds.append(payload.get("kind"))
                super().put(fingerprint, payload)

        # Drop the baseline so the lone miss has shardable work, keep
        # the two run records.
        seed = {
            fp: doc
            for fp, doc in store._mem.items()
            if doc["kind"] == "run"
        }
        recording = RecordingStore(seed)
        session = Session(
            store=recording, executor=SerialExecutor(), shards="auto"
        )
        # Pretend a 4-worker budget: 3 cached + 1 miss -> 4 // 1 = full
        # sharding for the miss despite the wide-looking grid.
        session.executor.jobs = 4
        session.run_many(specs)
        assert recording.put_kinds.count("baseline_shard") == 3

    def test_task_specs_pass_through(self):
        # A non-RunSpec batch routed through run_sharded is untouched.
        from repro.experiments.scaleout import ScaleoutSpec

        spec = ScaleoutSpec(
            cores=4, lc_name="masstree", load=0.2, requests=24,
            policy=PolicySpec.of("lru"),
        )
        session = Session(store=ResultStore(None), executor=SerialExecutor())
        assert session.run_sharded([spec], shards=3) == [
            Session(store=ResultStore(None), executor=SerialExecutor()).run(spec)
        ]

    def test_run_honors_explicit_shards_argument(self):
        spec = small_spec()
        session = Session(store=ResultStore(None), executor=SerialExecutor())
        unsharded = session.run(spec)
        fresh = Session(store=ResultStore(None), executor=SerialExecutor())
        assert fresh.run(spec, shards=2) == unsharded


class TestScaleoutShards:
    """ScaleoutShardSpec: the scaleout study's per-machine-size baseline
    riding the shard machinery with a size-parameterized config."""

    def test_plan_covers_lc_instances(self):
        from repro.runtime.sharding import plan_scaleout_shards

        shards = plan_scaleout_shards(
            lc_name="shore", load=0.2, requests=20, seed=21, cores=6, shards=3
        )
        assert [s.instances for s in shards] == [(0,), (1,), (2,)]
        assert {s.cores for s in shards} == {6}
        assert {s.num_shards for s in shards} == {3}
        # Clamped: a 4-core machine has only two LC instances.
        small = plan_scaleout_shards(
            lc_name="shore", load=0.2, requests=20, seed=21, cores=4, shards=8
        )
        assert [s.instances for s in small] == [(0,), (1,)]

    def test_fingerprints_distinct_by_size_and_slice(self):
        from repro.runtime.sharding import plan_scaleout_shards

        a = plan_scaleout_shards("shore", 0.2, 20, 21, cores=4, shards=2)
        b = plan_scaleout_shards("shore", 0.2, 20, 21, cores=6, shards=2)
        fingerprints = {s.fingerprint() for s in a} | {s.fingerprint() for s in b}
        assert len(fingerprints) == len(a) + len(b)

    def test_validation(self):
        from repro.runtime.sharding import ScaleoutShardSpec

        with pytest.raises(ValueError):
            ScaleoutShardSpec(lc_name="", instances=(0,))
        with pytest.raises(ValueError):
            ScaleoutShardSpec(lc_name="shore", cores=5, instances=(0,))
        with pytest.raises(ValueError):
            ScaleoutShardSpec(lc_name="shore", cores=4, instances=())
        with pytest.raises(ValueError):
            ScaleoutShardSpec(
                lc_name="shore", cores=4, instances=(0,), shard_index=2, num_shards=2
            )

    def test_merge_equals_serial_instance_loop(self):
        """Shard compute + merge == pooling the per-instance results in
        instance order (the historical serial baseline)."""
        from repro.runtime.sharding import plan_scaleout_shards
        from repro.server.latency import percentile_latency, tail_mean
        from repro.sim.study_runner import scaleout_baseline_instance

        shards = plan_scaleout_shards(
            lc_name="shore", load=0.2, requests=20, seed=21, cores=4, shards=2
        )
        merged = merge_shard_results([s.compute(None) for s in shards])
        pooled = []
        for instance in range(2):
            pooled.extend(
                scaleout_baseline_instance(
                    lc_name="shore",
                    load=0.2,
                    requests=20,
                    seed=21,
                    cores=4,
                    instance=instance,
                ).latencies
            )
        assert merged.baseline.latencies == tuple(pooled)
        assert merged.baseline.tail95_cycles == tail_mean(pooled, 95.0)
        assert merged.baseline.p95_cycles == percentile_latency(pooled, 95.0)

    def test_store_dedup_and_reclaim(self, tmp_path):
        """_scaleout_baseline executes each shard once, reclaims the
        shard documents, and serves reruns from the merged summary."""
        from repro.sim.study_runner import _scaleout_baseline

        store = ResultStore(tmp_path)
        identity = {
            "cores": 4,
            "lc_name": "shore",
            "load": 0.2,
            "requests": 20,
            "seed": 21,
        }
        first = _scaleout_baseline(store, identity)
        kinds = store.stats()["by_kind"]
        assert kinds.get("scaleout_baseline") == 1
        assert "scaleout_baseline_shard" not in kinds
        again = _scaleout_baseline(ResultStore(tmp_path), identity)
        assert again == first
