"""Tests for the named factory registries."""

import pytest

from repro.core.ubik import UbikPolicy
from repro.policies.lru import LRUPolicy
from repro.runtime import (
    Registry,
    list_batch_classes,
    list_lc_workloads,
    list_policies,
    list_schemes,
    make_policy,
    make_scheme,
)
from repro.workloads.latency_critical import LC_NAMES


class TestPolicyRegistry:
    def test_builtin_policies_present(self):
        names = list_policies()
        for expected in ("lru", "ucp", "onoff", "static_lc", "ubik", "fixed"):
            assert expected in names

    def test_make_policy_with_kwargs(self):
        policy = make_policy("ubik", slack=0.05)
        assert isinstance(policy, UbikPolicy)
        assert policy.slack == 0.05

    def test_make_policy_case_insensitive(self):
        assert isinstance(make_policy("LRU"), LRUPolicy)

    def test_unknown_policy_error_lists_names_and_suggests(self):
        with pytest.raises(KeyError) as excinfo:
            make_policy("ubiq")
        message = str(excinfo.value)
        assert "unknown policy 'ubiq'" in message
        assert "lru" in message  # the key table is listed
        assert "did you mean 'ubik'" in message


class TestSchemeRegistry:
    def test_builtin_schemes_present(self):
        names = list_schemes()
        for expected in (
            "vantage_zcache",
            "vantage_sa16",
            "vantage_sa64",
            "waypart_sa16",
            "waypart_sa64",
        ):
            assert expected in names

    def test_make_scheme_builds_model(self):
        model = make_scheme("waypart_sa16", llc_lines=16 * 1024)
        assert model.name == "WayPart SA16"
        assert model.granularity_lines > 1

    def test_unknown_scheme_rejected(self):
        with pytest.raises(KeyError, match="unknown scheme"):
            make_scheme("vantage_sa32", llc_lines=1024)


class TestWorkloadRegistries:
    def test_lc_names_registered(self):
        assert set(list_lc_workloads()) == set(LC_NAMES)

    def test_batch_classes_registered(self):
        assert list_batch_classes() == ["f", "n", "s", "t"]


class TestRegistryMechanics:
    def test_duplicate_registration_rejected(self):
        reg = Registry("thing")
        reg.register("a", lambda: 1)
        with pytest.raises(ValueError, match="already registered"):
            reg.register("a", lambda: 2)

    def test_decorator_form(self):
        reg = Registry("thing")

        @reg.register("b")
        def make_b():
            return "b!"

        assert reg.make("b") == "b!"
        assert "b" in reg
        assert len(reg) == 1
