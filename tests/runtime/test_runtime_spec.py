"""Tests for declarative run specs and their fingerprints."""

import os
import subprocess
import sys

import pytest

from repro.runtime.spec import (
    BaselineSpec,
    MixRef,
    PolicySpec,
    RunRecord,
    RunSpec,
    SchemeSpec,
    mix_refs,
)
from repro.workloads.mixes import make_mix_specs


def _spec() -> RunSpec:
    return RunSpec(
        mix=MixRef(lc_name="shore", load=0.2, combo="nft"),
        policy=PolicySpec.of("ubik", label="Ubik", slack=0.05),
        scheme=SchemeSpec.of("vantage_sa16"),
        requests=80,
        seed=7,
    )


class TestPolicySpec:
    def test_kwargs_canonical_order(self):
        a = PolicySpec.of("ubik", slack=0.05, boost_enabled=False)
        b = PolicySpec.of("ubik", boost_enabled=False, slack=0.05)
        assert a == b

    def test_display_defaults_to_name(self):
        assert PolicySpec.of("lru").display == "lru"
        assert PolicySpec.of("lru", label="LRU").display == "LRU"

    def test_non_scalar_kwarg_rejected(self):
        with pytest.raises(TypeError, match="JSON scalar"):
            PolicySpec.of("ubik", slack=[0.05])

    def test_build(self):
        policy = PolicySpec.of("ubik", slack=0.01).build()
        assert policy.slack == 0.01


class TestMixRef:
    def test_matches_make_mix_specs(self):
        old = make_mix_specs(
            lc_names=["shore"], loads=[0.2], mixes_per_combo=1
        )[5]
        ref = MixRef(lc_name="shore", load=0.2, combo="nft")
        built = ref.build()
        assert built.mix_id == old.mix_id
        assert [b.name for b in built.batch_apps] == [
            b.name for b in old.batch_apps
        ]
        assert [b.profile for b in built.batch_apps] == [
            b.profile for b in old.batch_apps
        ]

    def test_unknown_combo_rejected(self):
        with pytest.raises(ValueError, match="unknown batch combo"):
            MixRef(lc_name="shore", load=0.2, combo="xyz").build()

    def test_mix_refs_grid_matches_scaled_specs(self):
        from repro.experiments.common import ExperimentScale, scaled_mix_specs

        scale = ExperimentScale(
            requests=60,
            lc_names=("shore", "masstree"),
            loads=(0.2, 0.6),
            combos=("nft", "sss"),
            mixes_per_combo=1,
        )
        refs = mix_refs(
            scale.lc_names,
            scale.loads,
            scale.combos,
            scale.mixes_per_combo,
            scale.seed,
        )
        assert [r.mix_id for r in refs] == [
            s.mix_id for s in scaled_mix_specs(scale)
        ]


class TestFingerprint:
    def test_stable_within_process(self):
        assert _spec().fingerprint() == _spec().fingerprint()

    def test_label_does_not_affect_fingerprint(self):
        a = _spec()
        b = RunSpec(
            mix=a.mix,
            policy=PolicySpec.of("ubik", label="Renamed", slack=0.05),
            scheme=a.scheme,
            requests=a.requests,
            seed=a.seed,
        )
        assert a.fingerprint() == b.fingerprint()

    def test_content_changes_fingerprint(self):
        a = _spec()
        variants = [
            RunSpec(mix=a.mix, policy=PolicySpec.of("ubik", slack=0.10),
                    scheme=a.scheme, requests=a.requests, seed=a.seed),
            RunSpec(mix=a.mix, policy=a.policy, scheme=None,
                    requests=a.requests, seed=a.seed),
            RunSpec(mix=a.mix, policy=a.policy, scheme=a.scheme,
                    requests=a.requests, seed=a.seed + 1),
            RunSpec(mix=MixRef(lc_name="moses", load=0.2, combo="nft"),
                    policy=a.policy, scheme=a.scheme,
                    requests=a.requests, seed=a.seed),
        ]
        fingerprints = {v.fingerprint() for v in variants}
        assert a.fingerprint() not in fingerprints
        assert len(fingerprints) == len(variants)

    def test_stable_across_processes(self):
        """The store key must not depend on per-process hash state."""
        code = (
            "from repro.runtime.spec import RunSpec, MixRef, PolicySpec, "
            "SchemeSpec\n"
            "spec = RunSpec(mix=MixRef(lc_name='shore', load=0.2, "
            "combo='nft'), policy=PolicySpec.of('ubik', label='Ubik', "
            "slack=0.05), scheme=SchemeSpec.of('vantage_sa16'), "
            "requests=80, seed=7)\n"
            "print(spec.fingerprint())"
        )
        env = dict(os.environ, PYTHONHASHSEED="12345")
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        assert out.stdout.strip() == _spec().fingerprint()

    def test_json_round_trip(self):
        spec = _spec()
        clone = RunSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.fingerprint() == spec.fingerprint()

    def test_baseline_spec_fingerprint_differs_by_field(self):
        a = BaselineSpec(
            lc_name="shore", load=0.2, core_kind="ooo", requests=80, seed=7
        )
        b = BaselineSpec(
            lc_name="shore", load=0.2, core_kind="ooo", requests=80, seed=8
        )
        assert a.fingerprint() != b.fingerprint()


class TestRunRecord:
    def test_round_trip_ignores_unknown_keys(self):
        record = RunRecord(
            mix_id="m",
            lc_name="shore",
            load_label="lo",
            policy="Ubik",
            tail_degradation=1.0,
            weighted_speedup=1.2,
            lc_tail_cycles=10.0,
            baseline_tail_cycles=10.0,
        )
        payload = dict(record.to_dict(), future_field=123)
        assert RunRecord.from_dict(payload) == record

    def test_relabeled(self):
        record = RunRecord(
            mix_id="m",
            lc_name="shore",
            load_label="lo",
            policy="Ubik",
            tail_degradation=1.0,
            weighted_speedup=1.2,
            lc_tail_cycles=10.0,
            baseline_tail_cycles=10.0,
        )
        assert record.relabeled("Ubik") is record
        assert record.relabeled("Ubik-5%").policy == "Ubik-5%"
