"""Batch execution: grouping toggles and the zero-overhead off path.

``execute_specs`` groups sweep replays behind ``REPRO_GRID_REPLAY``.
With the toggle off it must restore per-spec execution *cost
included*: no group keys derived, ``plan_groups`` never called — the
escape hatch pays nothing for the machinery it is escaping.
"""

import pytest

import repro.runtime.work as work
from repro.runtime.spec import MixRef, PolicySpec, RunSpec
from repro.runtime.work import execute_spec, execute_specs

SWEEP_SPECS = [
    RunSpec(
        mix=MixRef(lc_name="masstree", load=0.2, combo="nft"),
        policy=policy,
        requests=30,
    )
    for policy in (
        PolicySpec.of("ubik", slack=0.05),
        PolicySpec.of("lru", label="LRU"),
    )
]


@pytest.fixture(autouse=True)
def _clean_toggle(monkeypatch):
    monkeypatch.delenv("REPRO_GRID_REPLAY", raising=False)


def test_toggle_off_never_plans_groups(monkeypatch):
    """``REPRO_GRID_REPLAY=0`` short-circuits before any group-planning
    work: neither ``plan_groups`` nor the group-key derivation runs."""

    def forbidden(*args, **kwargs):  # pragma: no cover - failure path
        raise AssertionError("group planning ran with REPRO_GRID_REPLAY=0")

    monkeypatch.setattr(work, "plan_groups", forbidden)
    monkeypatch.setattr(work, "_replay_group_key", forbidden)
    monkeypatch.setenv("REPRO_GRID_REPLAY", "0")
    results = execute_specs(SWEEP_SPECS, store=None)
    assert results == [execute_spec(spec, None) for spec in SWEEP_SPECS]


def test_toggle_on_plans_groups_once(monkeypatch):
    """The default path derives one key per sweep spec and calls
    ``plan_groups`` exactly once over them."""
    calls = []
    real = work.plan_groups

    def spy(keys):
        calls.append(list(keys))
        return real(keys)

    monkeypatch.setattr(work, "plan_groups", spy)
    grouped = execute_specs(SWEEP_SPECS, store=None)
    assert len(calls) == 1
    assert len(calls[0]) == len(SWEEP_SPECS)

    monkeypatch.setenv("REPRO_GRID_REPLAY", "0")
    scalar = execute_specs(SWEEP_SPECS, store=None)
    assert grouped == scalar  # the toggle is behavior-free


def test_toggle_off_results_match_per_spec_order(monkeypatch):
    """Mixed batches keep spec order on the off path too."""
    monkeypatch.setenv("REPRO_GRID_REPLAY", "0")
    results = execute_specs(list(reversed(SWEEP_SPECS)), store=None)
    assert [r.policy for r in results] == [
        spec.policy.display for spec in reversed(SWEEP_SPECS)
    ]
