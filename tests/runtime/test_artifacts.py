"""Tests for repro.runtime.artifacts: the per-process artifact cache."""

import numpy as np
import pytest

from repro.runtime.artifacts import (
    ArtifactCache,
    artifacts_enabled,
    get_artifacts,
    reset_artifacts,
    stream_key,
    workload_key,
)
from repro.runtime.spec import MixRef, PolicySpec, RunSpec
from repro.runtime.store import ResultStore
from repro.runtime.work import execute_spec
from repro.sim.mix_runner import MixRunner
from repro.workloads.latency_critical import make_lc_workload
from repro.workloads.reference import synthesize_stream


@pytest.fixture(autouse=True)
def _fresh_artifacts(monkeypatch):
    """Each test starts and ends with an empty process-wide cache,
    enabled regardless of the invoking environment (tests that cover
    the disabled path pin it themselves)."""
    monkeypatch.delenv("REPRO_ARTIFACTS", raising=False)
    reset_artifacts()
    yield
    reset_artifacts()


class TestArtifactCache:
    def test_get_or_make_counts_misses_then_hits(self):
        cache = ArtifactCache(enabled=True)
        built = []

        def build():
            built.append(1)
            return "value"

        assert cache.get_or_make("demo", ("k",), build) == "value"
        assert cache.get_or_make("demo", ("k",), build) == "value"
        assert built == [1]
        counts = cache.stats()["kinds"]["demo"]
        assert (counts["hits"], counts["misses"], counts["entries"]) == (1, 1, 1)

    def test_get_put_roundtrip_and_invalidate(self):
        cache = ArtifactCache(enabled=True)
        assert cache.get("demo", "k") is None  # counted miss
        cache.put("demo", "k", 42)
        assert cache.get("demo", "k") == 42
        cache.invalidate("demo", "k")
        assert cache.get("demo", "k") is None
        counts = cache.stats()["kinds"]["demo"]
        assert (counts["hits"], counts["misses"]) == (1, 2)

    def test_disabled_cache_never_stores_or_counts(self):
        cache = ArtifactCache(enabled=False)
        assert cache.get_or_make("demo", "k", lambda: 1) == 1
        cache.put("demo", "k", 2)
        assert cache.get("demo", "k") is None
        cache.count("demo", hit=True)
        stats = cache.stats()
        assert stats["enabled"] is False
        assert stats["entries"] == 0
        assert stats["kinds"] == {}

    def test_disabled_context_manager_restores_state(self):
        cache = ArtifactCache(enabled=True)
        with cache.disabled():
            assert cache.enabled is False
            cache.put("demo", "k", 1)
        assert cache.enabled is True
        assert cache.get("demo", "k") is None  # the put was dropped

    def test_env_toggle_controls_default_instance(self, monkeypatch):
        cache = ArtifactCache()  # follows the environment
        monkeypatch.setenv("REPRO_ARTIFACTS", "0")
        assert artifacts_enabled() is False
        assert cache.enabled is False
        monkeypatch.setenv("REPRO_ARTIFACTS", "1")
        assert cache.enabled is True
        monkeypatch.delenv("REPRO_ARTIFACTS")
        assert cache.enabled is True  # default on

    def test_explicit_flag_overrides_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACTS", "0")
        assert ArtifactCache(enabled=True).enabled is True

    def test_clear_resets_entries_and_counters(self):
        cache = ArtifactCache(enabled=True)
        cache.get_or_make("demo", "k", lambda: 1)
        cache.clear()
        stats = cache.stats()
        assert stats["entries"] == 0
        assert stats["kinds"] == {}

    def test_process_singleton(self):
        get_artifacts().put("demo", "k", 7)
        assert get_artifacts().get("demo", "k") == 7
        reset_artifacts()
        assert get_artifacts().get("demo", "k") is None


class TestContentKeys:
    def test_workload_key_is_content_addressed(self):
        """Two separately built but identical workloads share a key;
        a genuinely different workload does not."""
        assert workload_key(make_lc_workload("masstree")) == workload_key(
            make_lc_workload("masstree")
        )
        assert workload_key(make_lc_workload("masstree")) != workload_key(
            make_lc_workload("xapian")
        )
        assert workload_key(make_lc_workload("masstree")) != workload_key(
            make_lc_workload("masstree", target_mb=4.0)
        )

    def test_stream_key_separates_every_input(self):
        from repro.sim.config import CMPConfig

        wl = make_lc_workload("masstree")
        config = CMPConfig()
        base = stream_key(wl, 0.2, 0, 60, 2014, config)
        assert stream_key(wl, 0.2, 0, 60, 2014, CMPConfig()) == base
        assert stream_key(wl, 0.6, 0, 60, 2014, config) != base
        assert stream_key(wl, 0.2, 1, 60, 2014, config) != base
        assert stream_key(wl, 0.2, 0, 61, 2014, config) != base
        assert stream_key(wl, 0.2, 0, 60, 2015, config) != base
        assert (
            stream_key(wl, 0.2, 0, 60, 2014, CMPConfig(core_kind="inorder"))
            != base
        )


class TestStreamArtifacts:
    def test_streams_shared_across_runner_instances(self):
        wl = make_lc_workload("masstree")
        first = MixRunner(requests=40, seed=2014).stream(wl, 0.2, 0)
        second = MixRunner(requests=40, seed=2014).stream(wl, 0.2, 0)
        # Same frozen arrays, not merely equal values.
        assert first[0] is second[0] and first[1] is second[1]
        counts = get_artifacts().stats()["kinds"]["stream"]
        assert counts["hits"] >= 1 and counts["misses"] == 1

    def test_cached_streams_are_read_only(self):
        wl = make_lc_workload("masstree")
        arrivals, works = MixRunner(requests=40, seed=2014).stream(wl, 0.2, 0)
        with pytest.raises(ValueError):
            arrivals[0] = 0.0
        with pytest.raises(ValueError):
            works[0] = 0.0

    def test_stream_matches_scalar_reference(self):
        """The cached, vectorized stream equals the pre-vectorization
        scalar synthesis bit for bit — mixture workloads included."""
        for name in ("masstree", "xapian", "shore"):
            wl = make_lc_workload(name)
            runner = MixRunner(requests=50, seed=2014)
            for instance in range(2):
                arrivals, works = runner.stream(wl, 0.2, instance)
                ref_arrivals, ref_works = synthesize_stream(
                    wl, 0.2, instance, requests=50, seed=2014, config=runner.config
                )
                assert np.array_equal(arrivals, ref_arrivals)
                assert np.array_equal(works, ref_works)

    def test_disabled_cache_still_produces_identical_streams(self):
        wl = make_lc_workload("shore")
        cached = MixRunner(requests=40, seed=2014).stream(wl, 0.2, 0)
        with get_artifacts().disabled():
            fresh = MixRunner(requests=40, seed=2014).stream(wl, 0.2, 0)
        assert fresh[0] is not cached[0]
        assert np.array_equal(fresh[0], cached[0])
        assert np.array_equal(fresh[1], cached[1])


class TestBaselineArtifacts:
    def test_baseline_shared_across_runners_without_store(self):
        """A long-lived worker process serves a baseline to every spec
        in a batch even with no store attached."""
        wl = make_lc_workload("masstree")
        first = MixRunner(requests=40, seed=2014).baseline(wl, 0.2)
        second = MixRunner(requests=40, seed=2014).baseline(wl, 0.2)
        assert first == second
        counts = get_artifacts().stats()["kinds"]["baseline"]
        assert counts["hits"] == 1 and counts["misses"] == 1

    def test_runner_cache_keyed_on_requests_seed_warmup(self):
        """The tightened in-memory key: one runner evaluating differing
        measurement knobs must never alias two baselines."""
        wl = make_lc_workload("masstree")
        runner = MixRunner(requests=40, seed=2014)
        a = runner.baseline(wl, 0.2)
        other = MixRunner(requests=44, seed=2014).baseline(wl, 0.2)
        b = MixRunner(requests=40, seed=2015).baseline(wl, 0.2)
        c = MixRunner(requests=40, seed=2014, warmup_fraction=0.25).baseline(wl, 0.2)
        assert len({a.tail95_cycles, other.tail95_cycles, b.tail95_cycles}) == 3
        assert c != a
        # And the original is still served unchanged from the runner.
        assert runner.baseline(wl, 0.2) == a

    def test_artifact_hit_writes_through_to_a_fresh_store(self, tmp_path):
        """A warm process attached to an empty store must still persist
        the baseline document — byte-identical to a cache-off run —
        else cache-on and cache-off store trees would diverge."""
        wl = make_lc_workload("masstree")
        MixRunner(requests=40, seed=2014).baseline(wl, 0.2)  # warms artifacts

        warm_store = ResultStore(tmp_path / "warm")
        runner = MixRunner(requests=40, seed=2014, store=warm_store)
        runner.baseline(wl, 0.2)
        fingerprint = runner._baseline_fingerprint(wl, 0.2)
        warm_doc = warm_store.document_path(fingerprint)
        assert warm_doc.exists()

        reset_artifacts()
        cold_store = ResultStore(tmp_path / "cold")
        with get_artifacts().disabled():
            MixRunner(requests=40, seed=2014, store=cold_store).baseline(wl, 0.2)
        assert warm_doc.read_bytes() == cold_store.document_path(
            fingerprint
        ).read_bytes()

    def test_store_parse_memo_counts_through_artifacts(self, tmp_path):
        wl = make_lc_workload("masstree")
        store = ResultStore(tmp_path)
        MixRunner(requests=40, seed=2014, store=store).baseline(wl, 0.2)
        reset_artifacts()  # drop the baseline artifact, keep the store
        for _ in range(3):
            runner = MixRunner(requests=40, seed=2014, store=store)
            runner.baseline(wl, 0.2)
        counts = get_artifacts().stats()["kinds"]["baseline_parse"]
        # One parse on the first store read, memo hits after; exact
        # splits depend on the artifact layer's own baseline kind, so
        # just require the memo was exercised and never re-parsed.
        assert counts["misses"] <= 1
        assert counts["hits"] + counts["misses"] >= 1


class TestTier2:
    """The persistent artifact tier under ``REPRO_ARTIFACTS_TIER2``."""

    @pytest.fixture
    def tier2_url(self, monkeypatch, tmp_path):
        url = f"sqlite://{tmp_path}/artifacts.db"
        monkeypatch.setenv("REPRO_ARTIFACTS_TIER2", url)
        return url

    def test_target_resolution(self, monkeypatch, tmp_path):
        from repro.runtime.artifacts import artifacts_tier2_target

        monkeypatch.delenv("REPRO_ARTIFACTS_TIER2", raising=False)
        assert artifacts_tier2_target() is None
        monkeypatch.setenv("REPRO_ARTIFACTS_TIER2", "off")
        assert artifacts_tier2_target() is None
        monkeypatch.setenv("REPRO_ARTIFACTS_TIER2", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
        monkeypatch.delenv("REPRO_STORE", raising=False)
        assert artifacts_tier2_target() == f"{tmp_path / 'store'}-artifacts"
        monkeypatch.setenv("REPRO_ARTIFACTS_TIER2", f"sqlite://{tmp_path}/a.db")
        assert artifacts_tier2_target() == f"sqlite://{tmp_path}/a.db"

    def test_stream_survives_a_process_restart(self, tier2_url):
        """A fresh cache (a restarted process, conceptually) serves the
        stream from tier 2 bit for bit instead of re-synthesizing."""
        built = []

        def build():
            built.append(1)
            arrivals = np.arange(4, dtype=np.float64) * 1.5
            works = np.arange(4, dtype=np.float64) + 0.25
            arrivals.flags.writeable = False
            works.flags.writeable = False
            return arrivals, works

        warm = ArtifactCache(enabled=True)
        first = warm.get_or_make("stream", ("k",), build)
        cold = ArtifactCache(enabled=True)  # empty tier 1, same tier 2
        second = cold.get_or_make("stream", ("k",), build)
        assert built == [1]
        assert np.array_equal(first[0], second[0])
        assert np.array_equal(first[1], second[1])
        assert second[0].dtype == np.float64
        with pytest.raises(ValueError):
            second[0][0] = 0.0
        assert cold.stats()["tier2"]["kinds"]["stream"]["hits"] == 1

    def test_baseline_survives_a_process_restart(self, tier2_url):
        from repro.sim.mix_runner import BaselineResult

        baseline = BaselineResult(
            tail95_cycles=100.5, p95_cycles=90.25, latencies=(1.0, 2.5)
        )
        ArtifactCache(enabled=True).put("baseline", ("k",), baseline)
        cold = ArtifactCache(enabled=True)
        assert cold.get("baseline", ("k",)) == baseline

    def test_served_store_as_tier2(self, monkeypatch, tmp_path):
        """``REPRO_ARTIFACTS_TIER2=http://…`` rides the blob side of a
        served store: streams land there and a fresh cache (a restarted
        process, conceptually) is served bit for bit over the wire."""
        from fault_injection import live_server

        with live_server(f"sqlite://{tmp_path}/artifacts.db") as server:
            monkeypatch.setenv("REPRO_ARTIFACTS_TIER2", server.url)
            built = []

            def build():
                built.append(1)
                arrivals = np.arange(5, dtype=np.float64) * 0.5
                works = np.arange(5, dtype=np.float64) + 1.25
                arrivals.flags.writeable = False
                works.flags.writeable = False
                return arrivals, works

            warm = ArtifactCache(enabled=True)
            first = warm.get_or_make("stream", ("k",), build)
            cold = ArtifactCache(enabled=True)
            second = cold.get_or_make("stream", ("k",), build)
            assert built == [1]
            assert np.array_equal(first[0], second[0])
            assert np.array_equal(first[1], second[1])
            assert cold.stats()["tier2"]["kinds"]["stream"]["hits"] == 1
            # The payload really lives behind the served engine.
            from repro.runtime.backends import make_backend

            served = make_backend(f"sqlite://{tmp_path}/artifacts.db")
            assert served.blob_count() >= 1
            served.close()

    def test_object_kinds_stay_process_local(self, tier2_url):
        """Kinds without an exact-round-trip codec never persist."""
        ArtifactCache(enabled=True).put("lc_workload", ("k",), object())
        cold = ArtifactCache(enabled=True)
        assert cold.get("lc_workload", ("k",)) is None
        assert "lc_workload" not in cold.stats()["tier2"]["kinds"]

    def test_disabled_cache_bypasses_tier2(self, tier2_url):
        from repro.sim.mix_runner import BaselineResult

        ArtifactCache(enabled=True).put(
            "baseline",
            ("k",),
            BaselineResult(tail95_cycles=1.0, p95_cycles=1.0, latencies=(1.0,)),
        )
        disabled = ArtifactCache(enabled=False)
        assert disabled.get("baseline", ("k",)) is None
        # The probe never happened: no tier-2 counters were recorded.
        assert disabled.stats()["tier2"]["kinds"] == {}

    def test_stats_report_the_tier(self, tier2_url):
        cache = ArtifactCache(enabled=True)
        assert cache.get("stream", ("missing",)) is None  # tier-2 miss
        tier2 = cache.stats()["tier2"]
        assert tier2["enabled"] is True
        assert tier2["url"] == tier2_url
        assert tier2["kinds"]["stream"]["misses"] == 1

    def test_no_tier_without_the_env_knob(self, monkeypatch):
        monkeypatch.delenv("REPRO_ARTIFACTS_TIER2", raising=False)
        cache = ArtifactCache(enabled=True)
        assert cache.get("stream", ("k",)) is None
        tier2 = cache.stats()["tier2"]
        assert tier2["enabled"] is False
        assert tier2["url"] is None

    def test_clear_resets_tier2_counters(self, tier2_url):
        cache = ArtifactCache(enabled=True)
        cache.get("stream", ("k",))
        cache.clear()
        assert cache.stats()["tier2"]["kinds"] == {}

    def test_real_stream_round_trips_through_tier2(self, tier2_url):
        """End to end: a MixRunner stream persisted by one process is
        served byte-identical to a fresh one — no re-synthesis."""
        wl = make_lc_workload("masstree")
        first = MixRunner(requests=40, seed=2014).stream(wl, 0.2, 0)
        reset_artifacts()  # "restart": tier 1 gone, tier 2 remains
        second = MixRunner(requests=40, seed=2014).stream(wl, 0.2, 0)
        assert first[0] is not second[0]
        assert np.array_equal(first[0], second[0])
        assert np.array_equal(first[1], second[1])
        counts = get_artifacts().stats()["tier2"]["kinds"]["stream"]
        assert counts["hits"] >= 1


class TestExecutionIntegration:
    SPEC = RunSpec(
        mix=MixRef(lc_name="masstree", load=0.2, combo="nft"),
        policy=PolicySpec.of("ubik", slack=0.05),
        requests=40,
    )

    def test_execute_spec_identical_with_and_without_artifacts(self):
        warm = execute_spec(self.SPEC, None)
        with get_artifacts().disabled():
            cold = execute_spec(self.SPEC, None)
        assert warm == cold

    def test_second_evaluation_reuses_streams_and_baseline(self):
        execute_spec(self.SPEC, None)
        before = get_artifacts().stats()["kinds"]["stream"]["misses"]
        execute_spec(self.SPEC, None)
        after = get_artifacts().stats()["kinds"]
        assert after["stream"]["misses"] == before  # no new synthesis
        assert after["baseline"]["hits"] >= 1
        assert after["lc_workload"]["hits"] >= 1
        assert after["batch_mix"]["hits"] >= 1

    def test_session_artifact_stats(self):
        from repro.runtime.session import Session

        stats = Session(store=ResultStore(None)).artifact_stats()
        assert set(stats) == {"enabled", "entries", "kinds", "tier2"}


class TestCLIStats:
    def test_cache_stats_command(self, capsys):
        from repro.cli import main

        get_artifacts().get_or_make("demo", "k", lambda: 1)
        assert main(["cache", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "Artifact cache" in out
        assert "demo" in out

    def test_cache_stats_hints_when_empty(self, capsys):
        from repro.cli import main

        assert main(["cache", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "(empty)" in out

    def test_stats_flag_reports_a_command_own_reuse(
        self, capsys, monkeypatch, tmp_path
    ):
        """`repro run --stats` prints the counters the run itself
        accumulated — the per-process surface actually showing numbers."""
        from repro.cli import main

        # A fresh store so the run simulates instead of hitting a
        # record another test left in the session-wide test store.
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
        assert (
            main(
                [
                    "run",
                    "--lc",
                    "masstree",
                    "--requests",
                    "40",
                    "--policy",
                    "lru",
                    "--stats",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "kind: stream" in out
        assert "kind: baseline" in out
