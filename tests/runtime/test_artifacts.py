"""Tests for repro.runtime.artifacts: the per-process artifact cache."""

import numpy as np
import pytest

from repro.runtime.artifacts import (
    ArtifactCache,
    artifacts_enabled,
    get_artifacts,
    reset_artifacts,
    stream_key,
    workload_key,
)
from repro.runtime.spec import MixRef, PolicySpec, RunSpec
from repro.runtime.store import ResultStore
from repro.runtime.work import execute_spec
from repro.sim.mix_runner import MixRunner
from repro.workloads.latency_critical import make_lc_workload
from repro.workloads.reference import synthesize_stream


@pytest.fixture(autouse=True)
def _fresh_artifacts(monkeypatch):
    """Each test starts and ends with an empty process-wide cache,
    enabled regardless of the invoking environment (tests that cover
    the disabled path pin it themselves)."""
    monkeypatch.delenv("REPRO_ARTIFACTS", raising=False)
    reset_artifacts()
    yield
    reset_artifacts()


class TestArtifactCache:
    def test_get_or_make_counts_misses_then_hits(self):
        cache = ArtifactCache(enabled=True)
        built = []

        def build():
            built.append(1)
            return "value"

        assert cache.get_or_make("demo", ("k",), build) == "value"
        assert cache.get_or_make("demo", ("k",), build) == "value"
        assert built == [1]
        counts = cache.stats()["kinds"]["demo"]
        assert (counts["hits"], counts["misses"], counts["entries"]) == (1, 1, 1)

    def test_get_put_roundtrip_and_invalidate(self):
        cache = ArtifactCache(enabled=True)
        assert cache.get("demo", "k") is None  # counted miss
        cache.put("demo", "k", 42)
        assert cache.get("demo", "k") == 42
        cache.invalidate("demo", "k")
        assert cache.get("demo", "k") is None
        counts = cache.stats()["kinds"]["demo"]
        assert (counts["hits"], counts["misses"]) == (1, 2)

    def test_disabled_cache_never_stores_or_counts(self):
        cache = ArtifactCache(enabled=False)
        assert cache.get_or_make("demo", "k", lambda: 1) == 1
        cache.put("demo", "k", 2)
        assert cache.get("demo", "k") is None
        cache.count("demo", hit=True)
        stats = cache.stats()
        assert stats["enabled"] is False
        assert stats["entries"] == 0
        assert stats["kinds"] == {}

    def test_disabled_context_manager_restores_state(self):
        cache = ArtifactCache(enabled=True)
        with cache.disabled():
            assert cache.enabled is False
            cache.put("demo", "k", 1)
        assert cache.enabled is True
        assert cache.get("demo", "k") is None  # the put was dropped

    def test_env_toggle_controls_default_instance(self, monkeypatch):
        cache = ArtifactCache()  # follows the environment
        monkeypatch.setenv("REPRO_ARTIFACTS", "0")
        assert artifacts_enabled() is False
        assert cache.enabled is False
        monkeypatch.setenv("REPRO_ARTIFACTS", "1")
        assert cache.enabled is True
        monkeypatch.delenv("REPRO_ARTIFACTS")
        assert cache.enabled is True  # default on

    def test_explicit_flag_overrides_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACTS", "0")
        assert ArtifactCache(enabled=True).enabled is True

    def test_clear_resets_entries_and_counters(self):
        cache = ArtifactCache(enabled=True)
        cache.get_or_make("demo", "k", lambda: 1)
        cache.clear()
        stats = cache.stats()
        assert stats["entries"] == 0
        assert stats["kinds"] == {}

    def test_process_singleton(self):
        get_artifacts().put("demo", "k", 7)
        assert get_artifacts().get("demo", "k") == 7
        reset_artifacts()
        assert get_artifacts().get("demo", "k") is None


class TestContentKeys:
    def test_workload_key_is_content_addressed(self):
        """Two separately built but identical workloads share a key;
        a genuinely different workload does not."""
        assert workload_key(make_lc_workload("masstree")) == workload_key(
            make_lc_workload("masstree")
        )
        assert workload_key(make_lc_workload("masstree")) != workload_key(
            make_lc_workload("xapian")
        )
        assert workload_key(make_lc_workload("masstree")) != workload_key(
            make_lc_workload("masstree", target_mb=4.0)
        )

    def test_stream_key_separates_every_input(self):
        from repro.sim.config import CMPConfig

        wl = make_lc_workload("masstree")
        config = CMPConfig()
        base = stream_key(wl, 0.2, 0, 60, 2014, config)
        assert stream_key(wl, 0.2, 0, 60, 2014, CMPConfig()) == base
        assert stream_key(wl, 0.6, 0, 60, 2014, config) != base
        assert stream_key(wl, 0.2, 1, 60, 2014, config) != base
        assert stream_key(wl, 0.2, 0, 61, 2014, config) != base
        assert stream_key(wl, 0.2, 0, 60, 2015, config) != base
        assert (
            stream_key(wl, 0.2, 0, 60, 2014, CMPConfig(core_kind="inorder"))
            != base
        )


class TestStreamArtifacts:
    def test_streams_shared_across_runner_instances(self):
        wl = make_lc_workload("masstree")
        first = MixRunner(requests=40, seed=2014).stream(wl, 0.2, 0)
        second = MixRunner(requests=40, seed=2014).stream(wl, 0.2, 0)
        # Same frozen arrays, not merely equal values.
        assert first[0] is second[0] and first[1] is second[1]
        counts = get_artifacts().stats()["kinds"]["stream"]
        assert counts["hits"] >= 1 and counts["misses"] == 1

    def test_cached_streams_are_read_only(self):
        wl = make_lc_workload("masstree")
        arrivals, works = MixRunner(requests=40, seed=2014).stream(wl, 0.2, 0)
        with pytest.raises(ValueError):
            arrivals[0] = 0.0
        with pytest.raises(ValueError):
            works[0] = 0.0

    def test_stream_matches_scalar_reference(self):
        """The cached, vectorized stream equals the pre-vectorization
        scalar synthesis bit for bit — mixture workloads included."""
        for name in ("masstree", "xapian", "shore"):
            wl = make_lc_workload(name)
            runner = MixRunner(requests=50, seed=2014)
            for instance in range(2):
                arrivals, works = runner.stream(wl, 0.2, instance)
                ref_arrivals, ref_works = synthesize_stream(
                    wl, 0.2, instance, requests=50, seed=2014, config=runner.config
                )
                assert np.array_equal(arrivals, ref_arrivals)
                assert np.array_equal(works, ref_works)

    def test_disabled_cache_still_produces_identical_streams(self):
        wl = make_lc_workload("shore")
        cached = MixRunner(requests=40, seed=2014).stream(wl, 0.2, 0)
        with get_artifacts().disabled():
            fresh = MixRunner(requests=40, seed=2014).stream(wl, 0.2, 0)
        assert fresh[0] is not cached[0]
        assert np.array_equal(fresh[0], cached[0])
        assert np.array_equal(fresh[1], cached[1])


class TestBaselineArtifacts:
    def test_baseline_shared_across_runners_without_store(self):
        """A long-lived worker process serves a baseline to every spec
        in a batch even with no store attached."""
        wl = make_lc_workload("masstree")
        first = MixRunner(requests=40, seed=2014).baseline(wl, 0.2)
        second = MixRunner(requests=40, seed=2014).baseline(wl, 0.2)
        assert first == second
        counts = get_artifacts().stats()["kinds"]["baseline"]
        assert counts["hits"] == 1 and counts["misses"] == 1

    def test_runner_cache_keyed_on_requests_seed_warmup(self):
        """The tightened in-memory key: one runner evaluating differing
        measurement knobs must never alias two baselines."""
        wl = make_lc_workload("masstree")
        runner = MixRunner(requests=40, seed=2014)
        a = runner.baseline(wl, 0.2)
        other = MixRunner(requests=44, seed=2014).baseline(wl, 0.2)
        b = MixRunner(requests=40, seed=2015).baseline(wl, 0.2)
        c = MixRunner(requests=40, seed=2014, warmup_fraction=0.25).baseline(wl, 0.2)
        assert len({a.tail95_cycles, other.tail95_cycles, b.tail95_cycles}) == 3
        assert c != a
        # And the original is still served unchanged from the runner.
        assert runner.baseline(wl, 0.2) == a

    def test_artifact_hit_writes_through_to_a_fresh_store(self, tmp_path):
        """A warm process attached to an empty store must still persist
        the baseline document — byte-identical to a cache-off run —
        else cache-on and cache-off store trees would diverge."""
        wl = make_lc_workload("masstree")
        MixRunner(requests=40, seed=2014).baseline(wl, 0.2)  # warms artifacts

        warm_store = ResultStore(tmp_path / "warm")
        runner = MixRunner(requests=40, seed=2014, store=warm_store)
        runner.baseline(wl, 0.2)
        fingerprint = runner._baseline_fingerprint(wl, 0.2)
        warm_doc = warm_store.document_path(fingerprint)
        assert warm_doc.exists()

        reset_artifacts()
        cold_store = ResultStore(tmp_path / "cold")
        with get_artifacts().disabled():
            MixRunner(requests=40, seed=2014, store=cold_store).baseline(wl, 0.2)
        assert warm_doc.read_bytes() == cold_store.document_path(
            fingerprint
        ).read_bytes()

    def test_store_parse_memo_counts_through_artifacts(self, tmp_path):
        wl = make_lc_workload("masstree")
        store = ResultStore(tmp_path)
        MixRunner(requests=40, seed=2014, store=store).baseline(wl, 0.2)
        reset_artifacts()  # drop the baseline artifact, keep the store
        for _ in range(3):
            runner = MixRunner(requests=40, seed=2014, store=store)
            runner.baseline(wl, 0.2)
        counts = get_artifacts().stats()["kinds"]["baseline_parse"]
        # One parse on the first store read, memo hits after; exact
        # splits depend on the artifact layer's own baseline kind, so
        # just require the memo was exercised and never re-parsed.
        assert counts["misses"] <= 1
        assert counts["hits"] + counts["misses"] >= 1


class TestExecutionIntegration:
    SPEC = RunSpec(
        mix=MixRef(lc_name="masstree", load=0.2, combo="nft"),
        policy=PolicySpec.of("ubik", slack=0.05),
        requests=40,
    )

    def test_execute_spec_identical_with_and_without_artifacts(self):
        warm = execute_spec(self.SPEC, None)
        with get_artifacts().disabled():
            cold = execute_spec(self.SPEC, None)
        assert warm == cold

    def test_second_evaluation_reuses_streams_and_baseline(self):
        execute_spec(self.SPEC, None)
        before = get_artifacts().stats()["kinds"]["stream"]["misses"]
        execute_spec(self.SPEC, None)
        after = get_artifacts().stats()["kinds"]
        assert after["stream"]["misses"] == before  # no new synthesis
        assert after["baseline"]["hits"] >= 1
        assert after["lc_workload"]["hits"] >= 1
        assert after["batch_mix"]["hits"] >= 1

    def test_session_artifact_stats(self):
        from repro.runtime.session import Session

        stats = Session(store=ResultStore(None)).artifact_stats()
        assert set(stats) == {"enabled", "entries", "kinds"}


class TestCLIStats:
    def test_cache_stats_command(self, capsys):
        from repro.cli import main

        get_artifacts().get_or_make("demo", "k", lambda: 1)
        assert main(["cache", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "Artifact cache" in out
        assert "demo" in out

    def test_cache_stats_hints_when_empty(self, capsys):
        from repro.cli import main

        assert main(["cache", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "(empty)" in out

    def test_stats_flag_reports_a_command_own_reuse(
        self, capsys, monkeypatch, tmp_path
    ):
        """`repro run --stats` prints the counters the run itself
        accumulated — the per-process surface actually showing numbers."""
        from repro.cli import main

        # A fresh store so the run simulates instead of hitting a
        # record another test left in the session-wide test store.
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
        assert (
            main(
                [
                    "run",
                    "--lc",
                    "masstree",
                    "--requests",
                    "40",
                    "--policy",
                    "lru",
                    "--stats",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "kind: stream" in out
        assert "kind: baseline" in out
