"""The fault wall: retries recover, effects stay exactly-once.

Pins the harness itself (seeded schedules are deterministic and
bounded) and the http engine's behavior under it: N injected failures
of every flavor — dropped connections, 5xx errors, truncated response
bodies, delays, lost acknowledgements — end in a successful retried
outcome whose *visible* effects happened exactly once, and a torn
request body never reaches the engine at all.
"""

import socket

import pytest

from fault_injection import (
    FAILURE_ACTIONS,
    FaultInjected,
    FaultSchedule,
    FlakyBackend,
    live_server,
)
from repro.runtime.backends import HttpBackend, make_backend
from repro.runtime.backends.http import StoreUnavailable
from repro.runtime.backends.memory import MemoryBackend

FP = "ab" * 32  # a well-formed 64-hex fingerprint
DOC = '{"kind": "run", "value": 1}'


def fast_client(url, retries=8):
    """An http engine tuned for tests: patient retries, tiny backoff."""
    return HttpBackend(url.replace("http://", ""), retries=retries, backoff=0.001)


class TestFaultSchedule:
    def test_same_seed_same_stream(self):
        streams = []
        for _ in range(2):
            schedule = FaultSchedule(7, drop=0.2, error=0.2, truncate=0.1)
            streams.append([schedule.decide() for _ in range(200)])
        assert streams[0] == streams[1]
        assert any(action in FAILURE_ACTIONS for action in streams[0])

    def test_distinct_seeds_diverge(self):
        a = [FaultSchedule(1, drop=0.5).decide() for _ in range(100)]
        b = [FaultSchedule(2, drop=0.5).decide() for _ in range(100)]
        assert a != b

    def test_max_consecutive_bounds_failure_runs(self):
        schedule = FaultSchedule(3, drop=0.95, max_consecutive=3)
        run = longest = 0
        for _ in range(500):
            if schedule.decide() in FAILURE_ACTIONS:
                run += 1
                longest = max(longest, run)
            else:
                run = 0
        assert longest <= 3

    def test_counters_track_injections(self):
        schedule = FaultSchedule(11, drop=0.3, error=0.3)
        for _ in range(300):
            schedule.decide()
        assert schedule.total == 300
        assert schedule.failure_count == schedule.injected
        assert 0.2 < schedule.failure_fraction < 0.7

    def test_delay_succeeds_and_is_counted(self):
        schedule = FaultSchedule(5, delay=1.0, delay_seconds=0.0)
        action = schedule.decide()
        assert action == ("delay", 0.0)
        assert schedule.failure_count == 0 and schedule.injected == 1


class TestWireFaultsRecovered:
    """Every wire-level fault flavor ends in a correct retried outcome."""

    @pytest.mark.parametrize("flavor", ["drop", "error", "truncate"])
    def test_injected_failures_then_success(self, flavor):
        schedule = FaultSchedule(21, **{flavor: 0.5})
        with live_server("memory://", injector=schedule) as server:
            client = fast_client(server.url)
            for i in range(10):
                fp = f"{i:02x}" * 32
                client.put_doc(fp, DOC)
                assert client.get_doc(fp) == DOC
            assert client.doc_count() == 10
            assert sorted(client.iter_docs()) == sorted(
                f"{i:02x}" * 32 for i in range(10)
            )
        assert schedule.by_action[flavor] > 0  # the wall actually fired

    def test_delay_flavor_just_slows_requests(self):
        schedule = FaultSchedule(22, delay=0.6, delay_seconds=0.001)
        with live_server("memory://", injector=schedule) as server:
            client = fast_client(server.url, retries=0)  # no retry needed
            client.put_blob(FP, b"payload")
            assert client.get_blob(FP) == b"payload"
        assert schedule.by_action["delay"] > 0

    def test_truncated_body_never_surfaces_short(self):
        # Every truncated response must become a retry, never a short
        # payload handed to the caller.
        schedule = FaultSchedule(23, truncate=0.7, max_consecutive=1)
        payload = bytes(range(256)) * 8
        with live_server("memory://", injector=schedule) as server:
            client = fast_client(server.url)
            client.put_blob(FP, payload)
            for _ in range(20):
                assert client.get_blob(FP) == payload
        assert schedule.by_action["truncate"] > 0

    def test_retries_exhausted_raises_store_unavailable(self):
        schedule = FaultSchedule(24, drop=1.0, max_consecutive=10 ** 9)
        with live_server("memory://", injector=schedule) as server:
            client = fast_client(server.url, retries=2)
            with pytest.raises(StoreUnavailable):
                client.get_doc(FP)
        assert schedule.total == 3  # initial attempt + 2 retries

    def test_unreachable_server_raises_store_unavailable(self):
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()  # nothing listens here any more
        client = HttpBackend(f"127.0.0.1:{port}", retries=1, backoff=0.001)
        with pytest.raises(StoreUnavailable):
            client.put_doc(FP, DOC)


class TestExactlyOnce:
    """N injected failures → exactly-once visible effects."""

    def test_fail_before_applies_exactly_once(self):
        # Faults fire before the engine applies: each logical operation
        # reaches the engine exactly once no matter how many retries it
        # took to get there.
        schedule = FaultSchedule(31, error=0.5)
        flaky = FlakyBackend(MemoryBackend(), schedule, fail_after=False)
        with live_server(flaky) as server:
            client = fast_client(server.url)
            client.put_doc(FP, DOC)
            client.put_blob(FP, b"blob-bytes")
        assert flaky.applied["put_doc"] == 1
        assert flaky.applied["put_blob"] == 1
        assert flaky.engine.get_doc(FP) == DOC
        assert flaky.engine.get_blob(FP) == b"blob-bytes"
        assert schedule.failure_count > 0

    def test_lost_acknowledgement_never_double_applies_visibly(self):
        # fail_after: the engine applied the put but the response was
        # lost.  The retry re-applies — and because keys are content
        # fingerprints the corpus still shows the effect exactly once.
        schedule = FaultSchedule(32, error=0.6)
        flaky = FlakyBackend(MemoryBackend(), schedule, fail_after=True)
        with live_server(flaky) as server:
            client = fast_client(server.url)
            for i in range(6):
                client.put_doc(f"{i:02x}" * 32, DOC)
        assert flaky.applied["put_doc"] > 6  # some retried after applying
        assert flaky.engine.doc_count() == 6  # ...visible exactly once
        for i in range(6):
            assert flaky.engine.get_doc(f"{i:02x}" * 32) == DOC

    def test_delete_retried_through_lost_ack(self):
        schedule = FaultSchedule(33, error=0.5)
        engine = MemoryBackend()
        engine.put_doc(FP, DOC)
        flaky = FlakyBackend(engine, schedule, fail_after=True)
        with live_server(flaky) as server:
            client = fast_client(server.url)
            client.delete_doc(FP)
            assert client.get_doc(FP) is None
        assert engine.doc_count() == 0


class TestPartialWrites:
    """A torn request body never reaches the engine."""

    def test_short_body_put_is_refused_unapplied(self):
        with live_server("memory://") as server:
            host, port = server.server_address[0], server.server_port
            raw = socket.create_connection((host, port), timeout=5)
            raw.sendall(
                f"PUT /docs/{FP} HTTP/1.1\r\n"
                f"Host: {host}\r\n"
                "Content-Length: 4096\r\n"
                "\r\n".encode("ascii")
            )
            raw.sendall(b'{"torn"')  # a fraction of the promised body
            raw.close()  # the "client" dies mid-upload
            client = fast_client(server.url)
            assert client.get_doc(FP) is None  # nothing surfaced
            assert client.doc_count() == 0

    def test_malformed_key_is_refused(self):
        with live_server("memory://") as server:
            client = fast_client(server.url, retries=0)
            with pytest.raises(StoreUnavailable):
                client.put_doc("../escape", DOC)
            assert client.doc_count() == 0


class TestFlakyBackendDirect:
    """The wrapper is reusable by any backend test, server or not."""

    def test_raises_fault_injected(self):
        flaky = FlakyBackend(
            MemoryBackend(), FaultSchedule(41, drop=1.0, max_consecutive=1)
        )
        with pytest.raises(FaultInjected):
            flaky.put_doc(FP, DOC)
        flaky.put_doc(FP, DOC)  # forced-through request succeeds
        assert flaky.engine.get_doc(FP) == DOC

    def test_wraps_any_engine(self):
        flaky = FlakyBackend(MemoryBackend(), FaultSchedule(42))
        assert make_backend(flaky) is flaky
        flaky.put_blob(FP, b"x")
        assert list(flaky.iter_blobs()) == [FP]
        assert flaky.clear_blobs() == 1
