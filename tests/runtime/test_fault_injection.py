"""The fault wall: retries recover, effects stay exactly-once.

Pins the harness itself (seeded schedules are deterministic and
bounded) and the http engine's behavior under it: N injected failures
of every flavor — dropped connections, 5xx errors, truncated response
bodies, delays, lost acknowledgements — end in a successful retried
outcome whose *visible* effects happened exactly once, and a torn
request body never reaches the engine at all.
"""

import socket

import pytest

from fault_injection import (
    FAILURE_ACTIONS,
    FaultInjected,
    FaultSchedule,
    FlakyBackend,
    NodeOutage,
    live_server,
)
from repro.runtime.backends import HttpBackend, make_backend
from repro.runtime.backends.http import StoreUnavailable
from repro.runtime.backends.memory import MemoryBackend

FP = "ab" * 32  # a well-formed 64-hex fingerprint
DOC = '{"kind": "run", "value": 1}'


def fast_client(url, retries=8):
    """An http engine tuned for tests: patient retries, tiny backoff."""
    return HttpBackend(url.replace("http://", ""), retries=retries, backoff=0.001)


class TestFaultSchedule:
    def test_same_seed_same_stream(self):
        streams = []
        for _ in range(2):
            schedule = FaultSchedule(7, drop=0.2, error=0.2, truncate=0.1)
            streams.append([schedule.decide() for _ in range(200)])
        assert streams[0] == streams[1]
        assert any(action in FAILURE_ACTIONS for action in streams[0])

    def test_distinct_seeds_diverge(self):
        a = [FaultSchedule(1, drop=0.5).decide() for _ in range(100)]
        b = [FaultSchedule(2, drop=0.5).decide() for _ in range(100)]
        assert a != b

    def test_max_consecutive_bounds_failure_runs(self):
        schedule = FaultSchedule(3, drop=0.95, max_consecutive=3)
        run = longest = 0
        for _ in range(500):
            if schedule.decide() in FAILURE_ACTIONS:
                run += 1
                longest = max(longest, run)
            else:
                run = 0
        assert longest <= 3

    def test_counters_track_injections(self):
        schedule = FaultSchedule(11, drop=0.3, error=0.3)
        for _ in range(300):
            schedule.decide()
        assert schedule.total == 300
        assert schedule.failure_count == schedule.injected
        assert 0.2 < schedule.failure_fraction < 0.7

    def test_delay_succeeds_and_is_counted(self):
        schedule = FaultSchedule(5, delay=1.0, delay_seconds=0.0)
        action = schedule.decide()
        assert action == ("delay", 0.0)
        assert schedule.failure_count == 0 and schedule.injected == 1


class TestWireFaultsRecovered:
    """Every wire-level fault flavor ends in a correct retried outcome."""

    @pytest.mark.parametrize("flavor", ["drop", "error", "truncate"])
    def test_injected_failures_then_success(self, flavor):
        schedule = FaultSchedule(21, **{flavor: 0.5})
        with live_server("memory://", injector=schedule) as server:
            client = fast_client(server.url)
            for i in range(10):
                fp = f"{i:02x}" * 32
                client.put_doc(fp, DOC)
                assert client.get_doc(fp) == DOC
            assert client.doc_count() == 10
            assert sorted(client.iter_docs()) == sorted(
                f"{i:02x}" * 32 for i in range(10)
            )
        assert schedule.by_action[flavor] > 0  # the wall actually fired

    def test_delay_flavor_just_slows_requests(self):
        schedule = FaultSchedule(22, delay=0.6, delay_seconds=0.001)
        with live_server("memory://", injector=schedule) as server:
            client = fast_client(server.url, retries=0)  # no retry needed
            client.put_blob(FP, b"payload")
            assert client.get_blob(FP) == b"payload"
        assert schedule.by_action["delay"] > 0

    def test_truncated_body_never_surfaces_short(self):
        # Every truncated response must become a retry, never a short
        # payload handed to the caller.
        schedule = FaultSchedule(23, truncate=0.7, max_consecutive=1)
        payload = bytes(range(256)) * 8
        with live_server("memory://", injector=schedule) as server:
            client = fast_client(server.url)
            client.put_blob(FP, payload)
            for _ in range(20):
                assert client.get_blob(FP) == payload
        assert schedule.by_action["truncate"] > 0

    def test_retries_exhausted_raises_store_unavailable(self):
        schedule = FaultSchedule(24, drop=1.0, max_consecutive=10 ** 9)
        with live_server("memory://", injector=schedule) as server:
            client = fast_client(server.url, retries=2)
            with pytest.raises(StoreUnavailable):
                client.get_doc(FP)
        assert schedule.total == 3  # initial attempt + 2 retries

    def test_unreachable_server_raises_store_unavailable(self):
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()  # nothing listens here any more
        client = HttpBackend(f"127.0.0.1:{port}", retries=1, backoff=0.001)
        with pytest.raises(StoreUnavailable):
            client.put_doc(FP, DOC)


class TestExactlyOnce:
    """N injected failures → exactly-once visible effects."""

    def test_fail_before_applies_exactly_once(self):
        # Faults fire before the engine applies: each logical operation
        # reaches the engine exactly once no matter how many retries it
        # took to get there.
        schedule = FaultSchedule(31, error=0.5)
        flaky = FlakyBackend(MemoryBackend(), schedule, fail_after=False)
        with live_server(flaky) as server:
            client = fast_client(server.url)
            client.put_doc(FP, DOC)
            client.put_blob(FP, b"blob-bytes")
        assert flaky.applied["put_doc"] == 1
        assert flaky.applied["put_blob"] == 1
        assert flaky.engine.get_doc(FP) == DOC
        assert flaky.engine.get_blob(FP) == b"blob-bytes"
        assert schedule.failure_count > 0

    def test_lost_acknowledgement_never_double_applies_visibly(self):
        # fail_after: the engine applied the put but the response was
        # lost.  The retry re-applies — and because keys are content
        # fingerprints the corpus still shows the effect exactly once.
        schedule = FaultSchedule(32, error=0.6)
        flaky = FlakyBackend(MemoryBackend(), schedule, fail_after=True)
        with live_server(flaky) as server:
            client = fast_client(server.url)
            for i in range(6):
                client.put_doc(f"{i:02x}" * 32, DOC)
        assert flaky.applied["put_doc"] > 6  # some retried after applying
        assert flaky.engine.doc_count() == 6  # ...visible exactly once
        for i in range(6):
            assert flaky.engine.get_doc(f"{i:02x}" * 32) == DOC

    def test_delete_retried_through_lost_ack(self):
        schedule = FaultSchedule(33, error=0.5)
        engine = MemoryBackend()
        engine.put_doc(FP, DOC)
        flaky = FlakyBackend(engine, schedule, fail_after=True)
        with live_server(flaky) as server:
            client = fast_client(server.url)
            client.delete_doc(FP)
            assert client.get_doc(FP) is None
        assert engine.doc_count() == 0


class TestPartialWrites:
    """A torn request body never reaches the engine."""

    def test_short_body_put_is_refused_unapplied(self):
        with live_server("memory://") as server:
            host, port = server.server_address[0], server.server_port
            raw = socket.create_connection((host, port), timeout=5)
            raw.sendall(
                f"PUT /docs/{FP} HTTP/1.1\r\n"
                f"Host: {host}\r\n"
                "Content-Length: 4096\r\n"
                "\r\n".encode("ascii")
            )
            raw.sendall(b'{"torn"')  # a fraction of the promised body
            raw.close()  # the "client" dies mid-upload
            client = fast_client(server.url)
            assert client.get_doc(FP) is None  # nothing surfaced
            assert client.doc_count() == 0

    def test_malformed_key_is_refused(self):
        with live_server("memory://") as server:
            client = fast_client(server.url, retries=0)
            with pytest.raises(StoreUnavailable):
                client.put_doc("../escape", DOC)
            assert client.doc_count() == 0


class TestFlakyBackendDirect:
    """The wrapper is reusable by any backend test, server or not."""

    def test_raises_fault_injected(self):
        flaky = FlakyBackend(
            MemoryBackend(), FaultSchedule(41, drop=1.0, max_consecutive=1)
        )
        with pytest.raises(FaultInjected):
            flaky.put_doc(FP, DOC)
        flaky.put_doc(FP, DOC)  # forced-through request succeeds
        assert flaky.engine.get_doc(FP) == DOC

    def test_wraps_any_engine(self):
        flaky = FlakyBackend(MemoryBackend(), FaultSchedule(42))
        assert make_backend(flaky) is flaky
        flaky.put_blob(FP, b"x")
        assert list(flaky.iter_blobs()) == [FP]
        assert flaky.clear_blobs() == 1


class TestTier2ArtifactFaults:
    """The persistent artifact tier rides the same wall: tier-2 blob
    traffic through a flaky wire stays exactly-once and recoverable."""

    @staticmethod
    def _baseline():
        from repro.sim.mix_runner import BaselineResult

        return BaselineResult(
            tail95_cycles=9.5, p95_cycles=8.0, latencies=(1.0, 2.0, 9.5)
        )

    @staticmethod
    def _tier2_env(monkeypatch, url):
        monkeypatch.setenv("REPRO_ARTIFACTS", "1")
        monkeypatch.setenv("REPRO_ARTIFACTS_TIER2", url)
        monkeypatch.setenv("REPRO_HTTP_RETRIES", "8")
        monkeypatch.setenv("REPRO_HTTP_BACKOFF", "0.001")

    @pytest.mark.parametrize("flavor", ["drop", "error", "truncate"])
    def test_tier2_round_trip_through_wire_faults(self, monkeypatch, flavor):
        from repro.runtime.artifacts import ArtifactCache

        schedule = FaultSchedule(51, **{flavor: 0.5})
        with live_server("memory://", injector=schedule) as server:
            self._tier2_env(monkeypatch, server.url)
            value = self._baseline()
            key = ("masstree", 0.2, flavor)
            writer = ArtifactCache(enabled=True)
            writer.put("baseline", key, value)
            # A fresh cache is a fresh process: tier 1 cold, so the get
            # must come back through the faulty wire from tier 2.
            reader = ArtifactCache(enabled=True)
            assert reader.get("baseline", key) == value
        assert schedule.by_action[flavor] > 0  # the wall actually fired

    def test_tier2_lost_ack_applies_blob_exactly_once(self, monkeypatch):
        from repro.runtime.artifacts import ArtifactCache

        schedule = FaultSchedule(52, error=0.6)
        flaky = FlakyBackend(MemoryBackend(), schedule, fail_after=True)
        with live_server(flaky) as server:
            self._tier2_env(monkeypatch, server.url)
            writer = ArtifactCache(enabled=True)
            writer.put("baseline", ("masstree", 0.2, "ack"), self._baseline())
            # The put may have been applied then retried after a lost
            # acknowledgement — but the blob is content-addressed, so
            # the corpus shows it exactly once.
            assert flaky.applied["put_blob"] >= 1
            assert flaky.engine.blob_count() == 1
            reader = ArtifactCache(enabled=True)
            assert reader.get(
                "baseline", ("masstree", 0.2, "ack")
            ) == self._baseline()

    def test_tier2_total_outage_degrades_to_tier1_only(self, monkeypatch):
        # Tier 2 is best-effort by contract: a dark store must not fail
        # the run, just stop persisting.
        from repro.runtime.artifacts import ArtifactCache

        schedule = FaultSchedule(53, drop=1.0, max_consecutive=10 ** 9)
        with live_server("memory://", injector=schedule) as server:
            self._tier2_env(monkeypatch, server.url)
            monkeypatch.setenv("REPRO_HTTP_RETRIES", "1")
            cache = ArtifactCache(enabled=True)
            key = ("masstree", 0.2, "outage")
            cache.put("baseline", key, self._baseline())  # must not raise
            assert cache.get("baseline", key) == self._baseline()  # tier 1


class TestRetryBackoff:
    """The client's retry pacing: capped exponential, jittered, and
    deferential to an explicit server hint — but never parked forever."""

    @staticmethod
    def client(**kwargs):
        kwargs.setdefault("retries", 0)
        return HttpBackend("127.0.0.1:9", **kwargs)

    def test_delay_grows_exponentially_then_caps(self):
        client = self.client(backoff=0.1, max_backoff=0.4)
        for attempt in range(1, 7):
            ceiling = min(0.4, 0.1 * (2 ** (attempt - 1)))
            delay = client._retry_delay(attempt)
            assert 0.5 * ceiling <= delay < ceiling

    def test_jitter_desynchronizes_the_fleet(self):
        client = self.client(backoff=0.1)
        samples = {client._retry_delay(1) for _ in range(16)}
        assert len(samples) > 1

    def test_retry_after_raises_the_delay(self):
        client = self.client(backoff=0.001, max_backoff=2.0)
        delay = client._retry_delay(1, retry_after="0.5")
        assert 0.25 <= delay < 0.5

    def test_retry_after_is_still_capped(self):
        # The server's hint does not get to park the client forever.
        client = self.client(backoff=0.001, max_backoff=0.05)
        assert client._retry_delay(1, retry_after="3600") < 0.05

    def test_http_date_retry_after_is_ignored(self):
        client = self.client(backoff=0.1)
        delay = client._retry_delay(1, retry_after="Thu, 01 Jan 2026 00:00:00 GMT")
        assert 0.05 <= delay < 0.1

    def test_max_backoff_env_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_HTTP_MAX_BACKOFF", "0.25")
        client = self.client(backoff=1.0)
        assert client._retry_delay(4) < 0.25

    def test_server_hint_honored_end_to_end(self):
        import time as time_module

        schedule = FaultSchedule(54, error=0.5)
        with live_server("memory://", injector=schedule) as server:
            # An absurd hint: if the cap were not applied to the hint,
            # this test would sleep half a minute per injected 503.
            server.retry_after_hint = 30.0
            client = HttpBackend(
                server.url.replace("http://", ""),
                retries=8,
                backoff=0.001,
                max_backoff=0.02,
            )
            started = time_module.monotonic()
            for i in range(6):
                fp = f"{i:02x}" * 32
                client.put_doc(fp, DOC)
                assert client.get_doc(fp) == DOC
            assert time_module.monotonic() - started < 5.0
        assert schedule.by_action["error"] > 0


class TestHealthz:
    """The liveness route answers from process state, in one attempt."""

    def test_healthy_node_answers(self):
        with live_server("memory://") as server:
            client = fast_client(server.url)
            payload = client.healthz()
            assert payload is not None
            assert payload["ok"] is True
            assert payload["engine"] == "memory"

    def test_dead_wire_is_one_verdict_no_retries(self):
        schedule = FaultSchedule(55, drop=1.0, max_consecutive=10 ** 9)
        with live_server("memory://", injector=schedule) as server:
            client = fast_client(server.url, retries=8)
            assert client.healthz() is None
        # One fresh-connection attempt, not a retry ladder: the pool
        # was empty, so exactly one request was consulted.
        assert schedule.total == 1

    def test_healthz_never_touches_the_engine(self):
        schedule = FaultSchedule(56, drop=1.0, max_consecutive=10 ** 9)
        flaky = FlakyBackend(MemoryBackend(), schedule)
        with live_server(flaky) as server:
            client = fast_client(server.url)
            assert client.healthz() is not None  # engine faults invisible
        assert schedule.total == 0  # the engine wrapper was never consulted

    def test_unreachable_host_is_none(self):
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()
        client = HttpBackend(f"127.0.0.1:{port}", retries=8, backoff=0.001)
        assert client.healthz() is None


class TestGracefulDrain:
    """store-serve's shutdown path: finish in-flight work, then stop."""

    def test_signal_marks_draining_and_stops_the_loop(self):
        import os
        import signal
        import threading

        from repro.runtime.backends import serve_store
        from repro.runtime.backends.http import install_graceful_shutdown

        server = serve_store("memory://", host="127.0.0.1", port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        restore = install_graceful_shutdown(server)
        try:
            os.kill(os.getpid(), signal.SIGTERM)
            thread.join(timeout=10)
            assert not thread.is_alive()  # serve_forever returned
            assert server.draining is True
            assert server.drain(timeout=5.0) is True
        finally:
            restore()
            server.server_close()

    def test_drain_waits_for_the_inflight_request(self):
        import threading

        # A slow request (injected 0.2s delay) is mid-flight when the
        # server starts draining: drain() must wait for it, and the
        # client must still get its answer.
        schedule = FaultSchedule(57, delay=1.0, delay_seconds=0.2)
        with live_server("memory://", injector=schedule) as server:
            client = fast_client(server.url)
            client.put_doc(FP, DOC)  # slow, but lands (delays succeed)
            outcome = {}

            def slow_get():
                outcome["doc"] = client.get_doc(FP)

            worker = threading.Thread(target=slow_get)
            worker.start()
            import time as time_module

            time_module.sleep(0.05)  # let the request reach the server
            server.draining = True
            assert server.drain(timeout=5.0) is True
            worker.join(timeout=5)
            assert outcome["doc"] == DOC

    def test_draining_server_closes_keep_alive_after_the_response(self):
        with live_server("memory://") as server:
            client = fast_client(server.url)
            client.put_doc(FP, DOC)  # pools a keep-alive connection
            server.draining = True
            # The in-flight (last) request still answers...
            assert client.get_doc(FP) == DOC
            # ...and the server hung up afterwards; the pooled client
            # transparently reconnects, so the next call still works.
            assert client.get_doc(FP) == DOC


class TestNodeOutage:
    """The whole-node kill/revive schedule behind the cluster wall."""

    def test_kill_after_counts_served_requests(self):
        outage = NodeOutage(kill_after=3)
        for _ in range(3):
            assert outage("GET", "/docs") is None
        assert outage("GET", "/docs") == "drop"
        assert outage.dead is True
        assert outage.dropped == 1

    def test_manual_kill_and_revive(self):
        outage = NodeOutage(kill_after=100)
        outage.kill()
        assert outage("PUT", "/docs/ab") == "drop"
        outage.revive()
        assert outage("PUT", "/docs/ab") is None
        assert outage.kill_after is None  # the scheduled kill is spent

    def test_composes_with_an_inner_wire_schedule(self):
        inner = FaultSchedule(58, drop=1.0, max_consecutive=10 ** 9)
        outage = NodeOutage(schedule=inner)
        assert outage("GET", "/docs") == "drop"  # the wire, not the node
        assert inner.total == 1
        assert outage.dropped == 0

    def test_kills_the_wire_even_on_pooled_connections(self):
        # The property server_close() alone cannot give: a client that
        # pooled a keep-alive connection before the death still loses it.
        outage = NodeOutage()
        with live_server("memory://", injector=outage) as server:
            client = fast_client(server.url, retries=1)
            client.put_doc(FP, DOC)  # establishes the pooled connection
            outage.kill()
            with pytest.raises(StoreUnavailable):
                client.get_doc(FP)
            outage.revive()
            assert client.get_doc(FP) == DOC
        assert outage.dropped >= 2  # the attempt and its retry
