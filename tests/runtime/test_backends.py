"""Tests for the pluggable storage backends and their shared contract."""

import contextlib
import json
import os

import pytest

from fault_injection import live_server
from repro.runtime.backends import (
    BACKENDS,
    DirectoryBackend,
    HttpBackend,
    MemoryBackend,
    SqliteBackend,
    StoreBackend,
    make_backend,
    parse_store_url,
)
from repro.runtime.store import (
    ResultStore,
    default_store_url,
    migrate_store,
)

BACKEND_NAMES = ("directory", "sqlite", "memory", "http", "cluster")

#: The engines with their own media (http serves one of these).
LOCAL_BACKEND_NAMES = ("directory", "sqlite", "memory")


def make_target(name: str, tmp_path):
    """A store target string (or None) for one local backend."""
    if name == "directory":
        return str(tmp_path / "tree")
    if name == "sqlite":
        return f"sqlite://{tmp_path}/store.db"
    return None


@pytest.fixture
def target_factory(tmp_path):
    """``factory(name, label)`` → a store target for any engine.

    For the http engine this starts a real in-process served store
    (sqlite-backed, under ``tmp_path/<label>``) and returns its URL;
    servers are shut down when the test ends.
    """
    with contextlib.ExitStack() as stack:

        def factory(name: str, label: str = "t"):
            if name == "http":
                served = f"sqlite://{tmp_path}/{label}-served.db"
                return stack.enter_context(live_server(served)).url
            if name == "cluster":
                return (
                    "cluster://replicas=2;"
                    f"sqlite://{tmp_path}/{label}-n0.db;"
                    f"sqlite://{tmp_path}/{label}-n1.db"
                )
            return make_target(name, tmp_path / label)

        yield factory


@pytest.fixture(params=BACKEND_NAMES)
def backend(request, target_factory):
    instance = make_backend(target_factory(request.param))
    if isinstance(instance, HttpBackend):
        instance.backoff = 0.001  # keep test-suite retries snappy
    yield instance
    instance.close()


class TestParseStoreUrl:
    def test_sqlite_url(self):
        assert parse_store_url("sqlite:///tmp/x/store.db") == (
            "sqlite",
            "/tmp/x/store.db",
        )

    def test_directory_url(self):
        assert parse_store_url("directory:///tmp/x") == ("directory", "/tmp/x")

    def test_memory_url(self):
        assert parse_store_url("memory://") == ("memory", None)

    def test_bare_path_is_directory(self):
        assert parse_store_url("/tmp/corpus") == ("directory", "/tmp/corpus")

    @pytest.mark.parametrize("token", ["0", "off", "false", "no", "OFF", "memory"])
    def test_legacy_off_tokens(self, token):
        assert parse_store_url(token) == ("memory", None)

    def test_empty_is_memory(self):
        assert parse_store_url("") == ("memory", None)

    def test_http_url(self):
        assert parse_store_url("http://127.0.0.1:8377") == (
            "http",
            "127.0.0.1:8377",
        )

    def test_cluster_url(self):
        assert parse_store_url("cluster://replicas=2;http://a:1;http://b:2") == (
            "cluster",
            "replicas=2;http://a:1;http://b:2",
        )

    def test_bare_cluster_url_defers_to_env(self):
        # Topology may come from REPRO_STORE_CLUSTER at construction
        # time, so the parse itself must accept an empty location.
        assert parse_store_url("cluster://") == ("cluster", None)

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="unknown store backend"):
            parse_store_url("redis://localhost/0")

    def test_schemed_url_requires_path(self):
        with pytest.raises(ValueError, match="missing its path"):
            parse_store_url("sqlite://")

    def test_http_url_requires_host(self):
        with pytest.raises(ValueError, match="missing its path"):
            parse_store_url("http://")


class TestMakeBackend:
    def test_none_is_memory(self):
        assert make_backend(None).name == "memory"

    def test_pathlike_is_directory(self, tmp_path):
        instance = make_backend(tmp_path / "tree")
        assert instance.name == "directory"
        assert instance.root == tmp_path / "tree"

    def test_backend_passes_through(self):
        instance = MemoryBackend()
        assert make_backend(instance) is instance

    def test_registry_covers_every_scheme(self):
        assert set(BACKENDS) == set(BACKEND_NAMES)
        for name, cls in BACKENDS.items():
            assert cls.name == name
            assert issubclass(cls, StoreBackend)

    def test_url_round_trips(self, tmp_path):
        for name in ("directory", "sqlite"):
            first = make_backend(make_target(name, tmp_path))
            second = make_backend(first.url)
            assert second.name == first.name
            assert second.url == first.url

    def test_http_url_round_trips_without_connecting(self):
        # Construction must never touch the network: port 9 (discard)
        # would hang or refuse if it did.
        client = make_backend("http://127.0.0.1:9")
        assert client.name == "http"
        assert client.persistent
        assert client.url == "http://127.0.0.1:9"
        assert make_backend(client.url).url == client.url


class TestBackendContract:
    """Every engine honours the same document + blob semantics."""

    def test_document_round_trip(self, backend):
        fp = "ab" * 32
        assert backend.get_doc(fp) is None
        backend.put_doc(fp, '{"kind":"run","x":1}')
        assert backend.get_doc(fp) == '{"kind":"run","x":1}'
        assert backend.doc_count() == 1
        assert list(backend.iter_docs()) == [fp]

    def test_document_overwrite(self, backend):
        fp = "cd" * 32
        backend.put_doc(fp, "old")
        backend.put_doc(fp, "new")
        assert backend.get_doc(fp) == "new"
        assert backend.doc_count() == 1

    def test_document_delete(self, backend):
        fp = "ef" * 32
        backend.put_doc(fp, "doc")
        backend.delete_doc(fp)
        assert backend.get_doc(fp) is None
        assert backend.doc_count() == 0
        backend.delete_doc(fp)  # idempotent

    def test_blob_round_trip(self, backend):
        key = "12" * 32
        assert backend.get_blob(key) is None
        backend.put_blob(key, b"\x00\x01payload\xff")
        assert backend.get_blob(key) == b"\x00\x01payload\xff"
        assert backend.blob_count() == 1
        assert list(backend.iter_blobs()) == [key]
        backend.delete_blob(key)
        assert backend.get_blob(key) is None

    def test_blobs_and_documents_are_disjoint(self, backend):
        key = "34" * 32
        backend.put_doc(key, "doc")
        backend.put_blob(key, b"blob")
        assert backend.get_doc(key) == "doc"
        assert backend.get_blob(key) == b"blob"
        assert backend.doc_count() == 1
        assert backend.blob_count() == 1
        backend.delete_doc(key)
        assert backend.get_blob(key) == b"blob"

    def test_clear_documents_leaves_blobs(self, backend):
        backend.put_doc("ab" * 32, "doc")
        backend.put_blob("cd" * 32, b"blob")
        assert backend.clear_documents() == 1
        assert backend.doc_count() == 0
        assert backend.blob_count() == 1
        assert backend.clear_blobs() == 1
        assert backend.blob_count() == 0

    def test_disk_bytes_counts_persistent_engines_only(self, backend):
        backend.put_doc("ab" * 32, '{"kind":"run"}')
        if backend.persistent:
            assert backend.disk_bytes() > 0
        else:
            assert backend.disk_bytes() == 0


class TestPersistence:
    @pytest.mark.parametrize("name", ["directory", "sqlite", "http"])
    def test_second_handle_sees_the_corpus(self, name, target_factory):
        target = target_factory(name)
        writer = make_backend(target)
        writer.put_doc("ab" * 32, "doc")
        writer.put_blob("cd" * 32, b"blob")
        writer.close()
        reader = make_backend(target)
        assert reader.get_doc("ab" * 32) == "doc"
        assert reader.get_blob("cd" * 32) == b"blob"
        reader.close()

    def test_memory_handles_share_nothing(self, tmp_path):
        writer = make_backend(None)
        writer.put_doc("ab" * 32, "doc")
        assert make_backend(None).get_doc("ab" * 32) is None

    def test_sqlite_reads_never_create_the_file(self, tmp_path):
        path = tmp_path / "probe.db"
        backend = SqliteBackend(path)
        assert backend.get_doc("ab" * 32) is None
        assert backend.doc_count() == 0
        assert list(backend.iter_docs()) == []
        assert backend.clear_documents() == 0
        assert not path.exists()
        backend.put_doc("ab" * 32, "doc")
        assert path.exists()
        backend.close()


class TestDirectoryAtomicity:
    def test_put_leaves_no_temp_files(self, tmp_path):
        backend = DirectoryBackend(tmp_path)
        for index in range(20):
            backend.put_doc(f"{index:064x}", json.dumps({"i": index}))
        leftovers = [
            p for p in tmp_path.rglob("*") if p.is_file() and ".tmp" in p.name
        ]
        assert leftovers == []

    def test_orphan_temp_invisible_to_reads_and_swept_by_clear(self, tmp_path):
        backend = DirectoryBackend(tmp_path)
        fp = "ab" * 32
        backend.put_doc(fp, "doc")
        # A writer killed mid-put leaves a temp file behind.
        orphan = tmp_path / fp[:2] / ".tmp-dead01.json.tmp"
        orphan.write_text("{torn")
        assert backend.doc_count() == 1
        assert list(backend.iter_docs()) == [fp]
        assert backend.clear_documents() == 1
        assert not orphan.exists()

    def test_blob_put_is_atomic_too(self, tmp_path):
        backend = DirectoryBackend(tmp_path)
        backend.put_blob("cd" * 32, b"payload")
        blob_dir = tmp_path / "blobs"
        leftovers = [
            p for p in blob_dir.rglob("*") if p.is_file() and ".tmp" in p.name
        ]
        assert leftovers == []


def _tree_bytes(root):
    """fingerprint -> document bytes for a directory-layout tree."""
    return {p.stem: p.read_bytes() for p in root.glob("??/*.json")}


class TestCanonicalExport:
    def test_exports_byte_identical_across_backends(self, tmp_path, target_factory):
        docs = {
            "ab" * 32: '{"kind":"run","x":1.5}',
            "cd" * 32: '{"kind":"baseline","latencies":[1.0,2.25]}',
            "ef" * 32: '{"kind":"run","y":[1,2,3]}',
        }
        exports = {}
        for name in BACKEND_NAMES:
            backend = make_backend(target_factory(name, name))
            for fp, text in docs.items():
                backend.put_doc(fp, text)
            destination = tmp_path / f"export-{name}"
            assert backend.export_canonical(destination) == len(docs)
            exports[name] = _tree_bytes(destination)
            backend.close()
        assert exports["sqlite"] == exports["directory"]
        assert exports["memory"] == exports["directory"]
        assert exports["http"] == exports["directory"]  # the network hop
        assert exports["cluster"] == exports["directory"]  # the fabric
        # And the export reproduces the directory backend's own layout.
        assert exports["directory"] == _tree_bytes(
            tmp_path / "directory" / "tree"
        )

    def test_export_skips_blobs(self, tmp_path):
        backend = MemoryBackend()
        backend.put_doc("ab" * 32, "doc")
        backend.put_blob("cd" * 32, b"blob")
        destination = tmp_path / "export"
        assert backend.export_canonical(destination) == 1
        assert _tree_bytes(destination) == {"ab" * 32: b"doc"}
        assert not (destination / "blobs").exists()


class TestMigrate:
    @pytest.mark.parametrize("src_name", BACKEND_NAMES)
    @pytest.mark.parametrize("dst_name", BACKEND_NAMES)
    def test_migrate_preserves_export_bytes(
        self, src_name, dst_name, tmp_path, target_factory
    ):
        if src_name == dst_name == "memory":
            pytest.skip("two memory targets resolve to two empty stores")
        src = make_backend(target_factory(src_name, "src"))
        src.put_doc("ab" * 32, '{"kind":"run","x":1}')
        src.put_doc("cd" * 32, '{"kind":"baseline","t":2.5}')
        src.put_blob("ef" * 32, b"artifact-bytes")
        dst = make_backend(target_factory(dst_name, "dst"))
        counts = migrate_store(src, dst)
        assert counts == {"documents": 2, "blobs": 1}
        src_export, dst_export = tmp_path / "se", tmp_path / "de"
        src.export_canonical(src_export)
        dst.export_canonical(dst_export)
        assert _tree_bytes(src_export) == _tree_bytes(dst_export)
        assert dst.get_blob("ef" * 32) == b"artifact-bytes"
        src.close()
        dst.close()

    def test_round_trip_restores_the_original_corpus(self, tmp_path):
        origin = ResultStore(str(tmp_path / "origin"))
        origin.put("ab" * 32, {"kind": "run", "value": 1.25})
        origin_bytes = _tree_bytes(tmp_path / "origin")
        sqlite_url = f"sqlite://{tmp_path}/hop.db"
        migrate_store(str(tmp_path / "origin"), sqlite_url)
        migrate_store(sqlite_url, str(tmp_path / "back"))
        assert _tree_bytes(tmp_path / "back") == origin_bytes

    def test_refuses_migrating_onto_itself(self, tmp_path):
        target = str(tmp_path / "tree")
        make_backend(target).put_doc("ab" * 32, "doc")
        with pytest.raises(ValueError, match="onto itself"):
            migrate_store(target, target)

    def test_accepts_result_store_handles(self, tmp_path):
        src = ResultStore(str(tmp_path / "a"))
        dst = ResultStore(f"sqlite://{tmp_path}/b.db")
        src.put("ab" * 32, {"kind": "run"})
        assert migrate_store(src, dst)["documents"] == 1
        assert dst.get("ab" * 32)["kind"] == "run"


class TestDefaultStoreUrl:
    def test_url_in_env_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_STORE", f"sqlite://{tmp_path}/s.db")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "ignored"))
        assert default_store_url() == f"sqlite://{tmp_path}/s.db"

    def test_memory_url_means_no_store(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", "memory://")
        assert default_store_url() is None

    def test_invalid_env_url_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", "redis://localhost/0")
        with pytest.raises(ValueError, match="unknown store backend"):
            default_store_url()

    def test_falls_back_to_legacy_rules(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "s"))
        assert default_store_url() == str(tmp_path / "s")

    def test_off_toggle_means_no_store(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", "0")
        assert default_store_url() is None


class TestFacadeIdentity:
    def test_persistent_stores_expose_share_targets(self, tmp_path):
        sqlite_url = f"sqlite://{tmp_path}/s.db"
        store = ResultStore(sqlite_url)
        assert store.persistent
        assert store.share_target() == sqlite_url
        assert store.memo_key == sqlite_url
        assert store.root is None  # only the directory engine has one

    def test_directory_store_keeps_its_root(self, tmp_path):
        store = ResultStore(str(tmp_path / "tree"))
        assert store.root == tmp_path / "tree"
        assert store.share_target() == f"directory://{tmp_path}/tree"

    def test_memory_store_shares_nothing(self):
        store = ResultStore(None)
        assert not store.persistent
        assert store.share_target() is None
        assert store.memo_key == id(store)

    def test_worker_reopens_share_target(self, tmp_path):
        from repro.runtime.work import execute_in_worker
        from repro.runtime.spec import RunRecord

        sqlite_url = f"sqlite://{tmp_path}/s.db"
        parent = ResultStore(sqlite_url)
        reopened = ResultStore(parent.share_target())
        parent.put("ab" * 32, {"kind": "run", "x": 1})
        assert reopened.get("ab" * 32)["x"] == 1

    def test_http_store_exposes_share_target(self, target_factory):
        url = target_factory("http")
        store = ResultStore(url)
        assert store.persistent
        assert store.share_target() == url
        assert store.memo_key == url
        assert store.root is None

    def test_http_share_target_reopens_the_served_corpus(self, target_factory):
        # The pool-worker handoff: a second façade built from
        # share_target() must see the parent's writes over the wire.
        parent = ResultStore(target_factory("http"))
        parent.put("ab" * 32, {"kind": "run", "x": 1})
        reopened = ResultStore(parent.share_target())
        assert reopened.get("ab" * 32)["x"] == 1
        parent.close()
        reopened.close()
