"""Unit tests for the replicated cluster fabric backend.

The golden node-loss wall (``tests/golden/test_cluster_golden.py``)
proves the end-to-end property over real served nodes; this file pins
the mechanisms one at a time — spec parsing, rendezvous placement,
quorum writes, write-behind repair, failover and read-repair reads,
the circuit breaker's seeded jittered probes, tombstone repair, and
the composite's maintenance surface — over in-process children where
every failure is deterministic.
"""

import json

import pytest

from repro.runtime.backends import (
    BACKENDS,
    ClusterBackend,
    make_backend,
    parse_store_url,
)
from repro.runtime.backends.base import StoreBackend
from repro.runtime.backends.cluster import parse_cluster_spec
from repro.runtime.backends.http import StoreUnavailable
from repro.runtime.backends.memory import MemoryBackend
from repro.runtime.store import ResultStore

FP = "ab" * 32
DOC = '{"kind": "unit", "v": 1}'


class FlippableNode(StoreBackend):
    """A memory engine with a kill switch: dead → ConnectionError."""

    name = "flippable"
    persistent = True  # pretend, so fabric-level persistence is testable

    def __init__(self):
        self.engine = MemoryBackend()
        self.dead = False
        self.calls = 0

    @property
    def url(self) -> str:
        return f"flippable://{id(self)}"

    def _guard(self):
        self.calls += 1
        if self.dead:
            raise ConnectionError("node is down")

    def get_doc(self, fingerprint):
        self._guard()
        return self.engine.get_doc(fingerprint)

    def put_doc(self, fingerprint, text):
        self._guard()
        self.engine.put_doc(fingerprint, text)

    def delete_doc(self, fingerprint):
        self._guard()
        self.engine.delete_doc(fingerprint)

    def iter_docs(self):
        self._guard()
        return self.engine.iter_docs()

    def doc_count(self):
        self._guard()
        return self.engine.doc_count()

    def get_blob(self, key):
        self._guard()
        return self.engine.get_blob(key)

    def put_blob(self, key, payload):
        self._guard()
        self.engine.put_blob(key, payload)

    def delete_blob(self, key):
        self._guard()
        self.engine.delete_blob(key)

    def iter_blobs(self):
        self._guard()
        return self.engine.iter_blobs()

    def blob_count(self):
        self._guard()
        return self.engine.blob_count()

    def clear_documents(self):
        self._guard()
        return self.engine.clear_documents()

    def clear_blobs(self):
        self._guard()
        return self.engine.clear_blobs()

    def disk_bytes(self):
        self._guard()
        return self.engine.disk_bytes()

    def close(self):
        self.engine.close()


def fabric(nodes=3, replicas=2, **kwargs):
    children = [FlippableNode() for _ in range(nodes)]
    kwargs.setdefault("probe_base", 0.005)
    kwargs.setdefault("probe_cap", 0.02)
    return ClusterBackend(nodes=children, replicas=replicas, **kwargs), children


class TestSpecParsing:
    def test_compact_form(self):
        nodes, options = parse_cluster_spec(
            "replicas=2;http://a:1;http://b:2;quorum=1"
        )
        assert nodes == ["http://a:1", "http://b:2"]
        assert options == {"replicas": 2, "quorum": 1}

    def test_json_form(self):
        nodes, options = parse_cluster_spec(
            json.dumps({"nodes": ["http://a:1", "/tmp/tree"], "replicas": 3})
        )
        assert nodes == ["http://a:1", "/tmp/tree"]
        assert options == {"replicas": 3}

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(
            "REPRO_STORE_CLUSTER", "replicas=2;memory://;memory://"
        )
        nodes, options = parse_cluster_spec(None)
        assert nodes == ["memory://", "memory://"]
        assert options == {"replicas": 2}

    def test_empty_spec_without_env_raises(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE_CLUSTER", raising=False)
        with pytest.raises(ValueError, match="no topology"):
            parse_cluster_spec(None)

    def test_no_nodes_raises(self):
        with pytest.raises(ValueError, match="names no nodes"):
            parse_cluster_spec("replicas=2")

    def test_parse_store_url_allows_bare_cluster(self):
        assert parse_store_url("cluster://") == ("cluster", None)
        name, location = parse_store_url("cluster://replicas=2;http://a:1")
        assert name == "cluster"
        assert location == "replicas=2;http://a:1"

    def test_registered_engine(self):
        assert BACKENDS["cluster"] is ClusterBackend
        backend = make_backend("cluster://replicas=2;memory://;memory://")
        assert isinstance(backend, ClusterBackend)
        assert backend.replicas == 2

    def test_url_round_trips(self):
        backend = make_backend("cluster://replicas=2;memory://;memory://")
        again = make_backend(backend.url)
        assert again.url == backend.url
        assert again.replicas == backend.replicas


class TestPlacement:
    def test_replica_count_and_determinism(self):
        cluster, children = fabric()
        keys = [("%02x" % i) * 32 for i in range(64)]
        for key in keys:
            replicas = cluster.replicas_for(key)
            assert len(replicas) == 2
            assert replicas == cluster.replicas_for(key)  # stable

    def test_keys_spread_across_nodes(self):
        cluster, children = fabric()
        keys = [("%02x" % i) * 32 for i in range(64)]
        for key in keys:
            cluster.put_doc(key, DOC)
        counts = [child.engine.doc_count() for child in children]
        assert sum(counts) == 2 * len(keys)  # exactly R copies of each
        assert all(count > 0 for count in counts)  # sharding spreads

    def test_replicas_clamped_to_node_count(self):
        cluster, _ = fabric(nodes=2, replicas=5)
        assert cluster.replicas == 2

    def test_default_quorum_is_majority_of_r(self):
        assert fabric(replicas=2)[0].quorum == 1
        assert fabric(replicas=3)[0].quorum == 2
        cluster, _ = fabric(replicas=2, quorum=2)
        assert cluster.quorum == 2


class TestReplicatedWrites:
    def test_write_lands_on_all_replicas(self):
        cluster, children = fabric()
        cluster.put_doc(FP, DOC)
        holders = [c for c in children if c.engine.get_doc(FP) == DOC]
        assert len(holders) == 2

    def test_straggler_goes_to_repair_queue(self):
        cluster, children = fabric()
        replicas = cluster.replicas_for(FP)
        replicas[1].dead = True
        cluster.put_doc(FP, DOC)  # quorum 1: still acks
        assert cluster.get_doc(FP) == DOC
        assert cluster.counters["write_stragglers"] == 1
        replicas[1].dead = False
        outcome = cluster.repair()
        assert outcome == {"drained": 1, "pending": 0}
        assert replicas[1].engine.get_doc(FP) == DOC

    def test_quorum_not_met_raises(self):
        cluster, children = fabric()
        for child in children:
            child.dead = True
        with pytest.raises(StoreUnavailable, match="quorum"):
            cluster.put_doc(FP, DOC)

    def test_explicit_quorum_two_fails_with_one_survivor(self):
        cluster, children = fabric(quorum=2)
        replicas = cluster.replicas_for(FP)
        replicas[0].dead = True
        with pytest.raises(StoreUnavailable, match="quorum"):
            cluster.put_doc(FP, DOC)

    def test_newer_write_supersedes_queued_repair(self):
        cluster, _ = fabric()
        replicas = cluster.replicas_for(FP)
        replicas[1].dead = True
        cluster.put_doc(FP, '{"v": "stale"}')
        cluster.put_doc(FP, DOC)
        replicas[1].dead = False
        cluster.repair()
        assert replicas[1].engine.get_doc(FP) == DOC

    def test_tombstone_repair_keeps_deletes_deleted(self):
        """A delete while a replica is down must not resurrect when
        the node comes back: the repair queue carries a tombstone."""
        cluster, _ = fabric()
        cluster.put_doc(FP, DOC)
        replicas = cluster.replicas_for(FP)
        replicas[1].dead = True
        cluster.delete_doc(FP)
        assert replicas[1].engine.get_doc(FP) == DOC  # still on the corpse
        replicas[1].dead = False
        cluster.repair()
        assert replicas[1].engine.get_doc(FP) is None
        assert cluster.get_doc(FP) is None


class TestReplicatedReads:
    def test_failover_on_dead_preferred_replica(self):
        cluster, _ = fabric()
        cluster.put_doc(FP, DOC)
        replicas = cluster.replicas_for(FP)
        replicas[0].dead = True
        assert cluster.get_doc(FP) == DOC
        assert cluster.counters["read_failovers"] >= 1

    def test_miss_needs_a_definitive_answer(self):
        cluster, children = fabric()
        assert cluster.get_doc(FP) is None  # healthy miss
        for child in children:
            child.dead = True
        with pytest.raises(StoreUnavailable, match="unreachable"):
            cluster.get_doc(FP)

    def test_read_repair_propagates_partial_documents(self):
        """A document present on only one replica (e.g. written while
        the other was down, before repair drained) is re-propagated by
        the read that finds it."""
        cluster, _ = fabric()
        replicas = cluster.replicas_for(FP)
        replicas[1].engine.put_doc(FP, DOC)  # bypass: only replica 2 has it
        assert cluster.get_doc(FP) == DOC
        assert cluster.counters["read_repairs"] == 1
        assert replicas[0].engine.get_doc(FP) == DOC

    def test_union_listing_and_counts(self):
        cluster, _ = fabric()
        keys = sorted(("%02x" % i) * 32 for i in range(8))
        for key in keys:
            cluster.put_doc(key, DOC)
        assert list(cluster.iter_docs()) == keys
        assert cluster.doc_count() == len(keys)
        cluster.put_blob(FP, b"payload")
        assert list(cluster.iter_blobs()) == [FP]
        assert cluster.blob_count() == 1

    def test_union_skips_a_dead_node(self):
        cluster, children = fabric()
        keys = sorted(("%02x" % i) * 32 for i in range(8))
        for key in keys:
            cluster.put_doc(key, DOC)
        children[0].dead = True
        assert list(cluster.iter_docs()) == keys  # replicas cover it


class TestCircuitBreaker:
    def test_opens_after_threshold_and_skips_the_node(self):
        cluster, _ = fabric(breaker_threshold=3)
        replicas = cluster.replicas_for(FP)
        replicas[0].dead = True
        for _ in range(3):
            cluster.put_doc(FP, DOC)
        node = next(
            n for n in cluster._nodes if n.backend is replicas[0]
        )
        assert node.circuit == "open"
        calls_before = replicas[0].calls
        cluster.put_doc(FP, DOC)  # open circuit: not even attempted
        assert replicas[0].calls == calls_before

    def test_reopen_probe_is_jittered_and_capped(self):
        cluster, _ = fabric(
            breaker_threshold=1, probe_base=0.5, probe_cap=4.0, seed=7
        )
        replicas = cluster.replicas_for(FP)
        replicas[0].dead = True
        node = next(n for n in cluster._nodes if n.backend is replicas[0])
        delays = []
        for _ in range(8):
            try:
                cluster.put_doc(FP, DOC)
            except StoreUnavailable:
                pass
            delays.append(node.last_delay)
            node.open_until = 0.0  # force the next attempt through
        # Every delay sits in [0.5, 1.0) × the capped exponential.
        for index, delay in enumerate(delays):
            ceiling = min(4.0, 0.5 * (2 ** min(index, 6)))
            assert 0.5 * ceiling <= delay < ceiling
        # The cap binds: late delays never exceed probe_cap.
        assert max(delays) < 4.0
        # And the jitter is real: delays are not all at the ceiling.
        assert len({round(d, 6) for d in delays}) > 1

    def test_seeded_jitter_is_reproducible(self):
        sequences = []
        for _ in range(2):
            cluster, _ = fabric(breaker_threshold=1, seed=2014)
            replicas = cluster.replicas_for(FP)
            replicas[0].dead = True
            node = next(
                n for n in cluster._nodes if n.backend is replicas[0]
            )
            delays = []
            for _ in range(4):
                cluster.put_doc(FP, DOC)
                delays.append(node.last_delay)
                node.open_until = 0.0
            sequences.append(delays)
        assert sequences[0] == sequences[1]

    def test_success_closes_the_circuit(self):
        cluster, _ = fabric(breaker_threshold=1, probe_base=0.0)
        replicas = cluster.replicas_for(FP)
        replicas[0].dead = True
        cluster.put_doc(FP, DOC)
        node = next(n for n in cluster._nodes if n.backend is replicas[0])
        assert node.failures > 0
        replicas[0].dead = False
        node.open_until = 0.0  # probe due immediately
        cluster.put_doc(FP, DOC)
        cluster.repair()
        assert node.circuit == "closed"
        assert node.failures == 0


class TestMaintenance:
    def test_clear_documents_returns_logical_count(self):
        cluster, children = fabric()
        for index in range(6):
            cluster.put_doc(("%02x" % index) * 32, DOC)
        assert cluster.clear_documents() == 6  # union, not R× raw copies
        assert cluster.doc_count() == 0
        assert all(c.engine.doc_count() == 0 for c in children)

    def test_clear_requires_the_whole_fabric(self):
        cluster, children = fabric()
        cluster.put_doc(FP, DOC)
        children[2].dead = True
        with pytest.raises(StoreUnavailable, match="clear"):
            cluster.clear_documents()

    def test_disk_bytes_sums_reachable_nodes(self):
        cluster, children = fabric()
        cluster.put_doc(FP, DOC)
        expected = sum(child.engine.disk_bytes() for child in children)
        assert cluster.disk_bytes() == expected
        children[0].dead = True  # a dark node is skipped, not fatal
        assert cluster.disk_bytes() <= expected

    def test_status_shape(self):
        cluster, children = fabric()
        cluster.put_doc(FP, DOC)
        children[0].dead = True
        status = cluster.status()
        assert status["replicas"] == 2
        assert status["quorum"] == 1
        assert len(status["nodes"]) == 3
        for node in status["nodes"]:
            for key in (
                "url",
                "healthy",
                "circuit",
                "consecutive_failures",
                "pending_repairs",
                "documents",
                "blobs",
            ):
                assert key in node
        healthy = [n["healthy"] for n in status["nodes"]]
        assert healthy.count(False) == 1

    def test_persistent_only_when_every_child_is(self):
        persistent = make_backend("cluster://replicas=1;memory://;memory://")
        assert persistent.persistent is False  # memory children
        cluster, _ = fabric()
        assert cluster.persistent is True  # FlippableNode claims True


class TestFacade:
    def test_result_store_facade_over_the_fabric(self):
        cluster, _ = fabric()
        store = ResultStore(cluster)
        store.put(FP, {"kind": "unit", "result": 1})
        fresh = ResultStore(cluster)
        fetched = fresh.get(FP)
        assert fetched["kind"] == "unit"
        assert fetched["result"] == 1
        stats = fresh.stats()
        assert stats["backend"] == "cluster"
        assert stats["documents"] == 1

    def test_share_target_is_the_cluster_url(self):
        cluster, _ = fabric()
        store = ResultStore(cluster)
        assert store.share_target() == cluster.url
        assert store.share_target().startswith("cluster://replicas=2;")

    def test_export_canonical_over_the_composite(self, tmp_path):
        cluster, _ = fabric()
        store = ResultStore(cluster)
        store.put(FP, {"kind": "unit", "result": 1})
        exported = store.export_canonical(tmp_path / "out")
        assert exported == 1
        assert (tmp_path / "out" / FP[:2] / f"{FP}.json").is_file()

    def test_client_options_reach_http_children(self):
        cluster = ClusterBackend(
            nodes=["http://127.0.0.1:1", "http://127.0.0.1:2"],
            replicas=2,
            client_options={"timeout": 1.5, "retries": 0, "backoff": 0.001},
        )
        for node in cluster._nodes:
            assert node.backend.timeout == 1.5
            assert node.backend.retries == 0
