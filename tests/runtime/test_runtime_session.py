"""Integration tests for the Session facade (store + executors)."""

import pytest

from repro.experiments.common import ExperimentScale
from repro.runtime import (
    MixRef,
    ParallelExecutor,
    PolicySpec,
    ResultStore,
    RunSpec,
    SchemeSpec,
    SerialExecutor,
    Session,
)

TINY = ExperimentScale(
    requests=60,
    lc_names=("masstree",),
    loads=(0.2,),
    combos=("nft",),
    mixes_per_combo=1,
)

POLICIES = (
    PolicySpec.of("static_lc", label="StaticLC"),
    PolicySpec.of("ubik", label="Ubik", slack=0.05),
)


def _session(executor=None):
    return Session(store=ResultStore(None), executor=executor or SerialExecutor())


class TestRun:
    def test_single_spec_produces_record(self):
        record = _session().run(
            RunSpec(
                mix=MixRef(lc_name="masstree", load=0.2, combo="nft"),
                policy=PolicySpec.of("ubik", label="Ubik", slack=0.05),
                requests=60,
            )
        )
        assert record.policy == "Ubik"
        assert record.mix_id == "masstree-lo-nft.0"
        assert record.tail_degradation > 0
        assert record.weighted_speedup > 0

    def test_store_hit_skips_recompute_and_relabels(self, tmp_path):
        spec = RunSpec(
            mix=MixRef(lc_name="masstree", load=0.2, combo="nft"),
            policy=PolicySpec.of("ubik", label="Ubik", slack=0.05),
            requests=60,
        )
        first = Session(store=ResultStore(tmp_path)).run(spec)
        renamed = RunSpec(
            mix=spec.mix,
            policy=PolicySpec.of("ubik", label="Ubik-5%", slack=0.05),
            requests=60,
        )
        second = Session(store=ResultStore(tmp_path)).run(renamed)
        assert second.policy == "Ubik-5%"
        assert second.tail_degradation == first.tail_degradation
        assert second.lc_tail_cycles == first.lc_tail_cycles


class TestSweep:
    def test_sweep_shape_and_order(self):
        sweep = _session().sweep(TINY, policies=POLICIES)
        assert [r.policy for r in sweep.records] == ["StaticLC", "Ubik"]
        assert sweep.policies() == ["StaticLC", "Ubik"]

    def test_serial_and_parallel_identical(self):
        serial = _session().sweep(TINY, policies=POLICIES)
        parallel = _session(ParallelExecutor(2)).sweep(TINY, policies=POLICIES)
        assert serial.records == parallel.records

    def test_store_round_trip_identical_records(self, tmp_path):
        cold = Session(store=ResultStore(tmp_path)).sweep(TINY, policies=POLICIES)
        warm = Session(store=ResultStore(tmp_path)).sweep(TINY, policies=POLICIES)
        assert warm.records == cold.records
        stats = ResultStore(tmp_path).stats()
        assert stats["by_kind"]["run"] == len(cold.records)
        assert stats["by_kind"]["baseline"] == 1

    def test_scheme_by_name(self):
        sweep = _session().sweep(
            TINY, policies=POLICIES[1:], scheme="waypart_sa16"
        )
        assert len(sweep.records) == 1

    def test_scheme_spec_changes_results(self):
        ideal = _session().sweep(TINY, policies=POLICIES[1:])
        lossy = _session().sweep(
            TINY,
            policies=POLICIES[1:],
            scheme=SchemeSpec.of("waypart_sa16"),
        )
        assert ideal.records != lossy.records


class TestLegacyCompat:
    def test_run_policy_sweep_factories_still_memoized(self):
        from repro.core.ubik import UbikPolicy
        from repro.experiments.sweep import run_policy_sweep
        from repro.policies.static_lc import StaticLCPolicy

        factories = (
            ("StaticLC", StaticLCPolicy),
            ("Ubik", lambda: UbikPolicy(slack=0.05)),
        )
        sweep = run_policy_sweep(TINY, policy_factories=factories)
        again = run_policy_sweep(TINY, policy_factories=factories)
        assert again is sweep

    def test_legacy_and_declarative_paths_agree(self):
        from repro.core.ubik import UbikPolicy
        from repro.experiments.sweep import run_policy_sweep
        from repro.policies.static_lc import StaticLCPolicy

        legacy = run_policy_sweep(
            TINY,
            policy_factories=(
                ("StaticLC", StaticLCPolicy),
                ("Ubik", lambda: UbikPolicy(slack=0.05)),
            ),
        )
        declarative = _session().sweep(TINY, policies=POLICIES)
        assert legacy.records == declarative.records
