"""Docs stay true: the tier-1 wiring of ``tools/check_docs.py``.

Runs the same link and code-fence checks as the CI docs job, plus unit
coverage of the checker itself (so a silently-lenient checker cannot
green-light rotten docs).
"""

import importlib.util
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[1]

_spec = importlib.util.spec_from_file_location(
    "check_docs", ROOT / "tools" / "check_docs.py"
)
check_docs = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_docs)


class TestRepositoryDocs:
    def test_gate_covers_readme_and_docs(self):
        names = {p.name for p in check_docs.doc_files()}
        assert "README.md" in names
        assert "ARCHITECTURE.md" in names
        assert "REPRODUCING.md" in names

    def test_all_docs_clean(self):
        findings = check_docs.run()
        assert findings == [], "\n".join(findings)


class TestCheckerCatchesRot:
    def make(self, tmp_path, text):
        page = tmp_path / "page.md"
        page.write_text(text)
        return page

    def test_broken_link_reported(self, tmp_path):
        page = self.make(tmp_path, "see [x](missing.md) for more\n")
        problems = check_docs.check_links(page)
        assert len(problems) == 1
        assert "missing.md" in problems[0][1]

    def test_missing_anchor_reported(self, tmp_path):
        (tmp_path / "other.md").write_text("# Real Heading\n")
        page = self.make(tmp_path, "[x](other.md#fake-heading)\n")
        problems = check_docs.check_links(page)
        assert len(problems) == 1
        assert "fake-heading" in problems[0][1]

    def test_valid_anchor_and_external_links_pass(self, tmp_path):
        (tmp_path / "other.md").write_text("## Trace sharding: *inside* one run\n")
        page = self.make(
            tmp_path,
            "[a](other.md#trace-sharding-inside-one-run) "
            "[b](https://example.com/x) [c](other.md)\n",
        )
        assert check_docs.check_links(page) == []

    def test_syntax_error_fence_reported(self, tmp_path):
        page = self.make(tmp_path, "```python\ndef broken(:\n```\n")
        problems = check_docs.check_code_fences(page)
        assert len(problems) == 1
        assert "does not compile" in problems[0][1]

    def test_failing_doctest_fence_reported(self, tmp_path):
        page = self.make(tmp_path, "```python\n>>> 1 + 1\n3\n\n```\n")
        problems = check_docs.check_code_fences(page)
        assert len(problems) == 1
        assert "doctest failed" in problems[0][1]

    def test_passing_doctest_fence_executes(self, tmp_path):
        page = self.make(tmp_path, "```python\n>>> 2 + 2\n4\n\n```\n")
        assert check_docs.check_code_fences(page) == []

    def test_no_run_fence_is_only_compiled(self, tmp_path):
        page = self.make(
            tmp_path, "```python no-run\n>>> undefined_name\n0\n\n```\n"
        )
        # Would fail if executed; compile-only accepts it.
        assert check_docs.check_code_fences(page) == []

    def test_github_slugs(self):
        slug = check_docs.github_slug
        assert slug("The `RunSpec` → fingerprint → store lifecycle") == (
            "the-runspec--fingerprint--store-lifecycle"
        )
        assert slug("Plain Words") == "plain-words"
