"""Tests for repro.cpu core models."""

import pytest

from repro.cpu import (
    AppProfile,
    InOrderCore,
    OutOfOrderCore,
    make_core_model,
)


@pytest.fixture
def profile():
    # The paper's Section 5.1 worked example: IPC=1.5, 5 APKI.
    return AppProfile("example", apki=5.0, base_cpi=1.0 / 1.5 * 0.925, mlp=2.0)


class TestProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            AppProfile("x", apki=-1, base_cpi=1.0)
        with pytest.raises(ValueError):
            AppProfile("x", apki=1, base_cpi=0.0)
        with pytest.raises(ValueError):
            AppProfile("x", apki=1, base_cpi=1.0, mlp=0.5)

    def test_instructions_per_access(self):
        profile = AppProfile("x", apki=5.0, base_cpi=1.0)
        assert profile.instructions_per_access == pytest.approx(200.0)

    def test_zero_apki_infinite_interval(self):
        profile = AppProfile("x", apki=0.0, base_cpi=1.0)
        assert profile.instructions_per_access == float("inf")
        assert profile.accesses_for(1e6) == 0.0

    def test_accesses_for(self):
        profile = AppProfile("x", apki=5.0, base_cpi=1.0)
        assert profile.accesses_for(10_000) == pytest.approx(50.0)


class TestPaperWorkedExample:
    """Section 5.1: IPC=1.5, 5 APKI, 10% miss, M=100 -> Taccess=133, c=123."""

    def test_access_interval(self):
        profile = AppProfile("x", apki=5.0, base_cpi=123.33 / 200.0, mlp=2.0)
        core = OutOfOrderCore(mem_latency_cycles=200.0)
        assert core.miss_penalty(profile) == pytest.approx(100.0)
        assert core.hit_interval(profile) == pytest.approx(123.33, rel=0.001)
        assert core.access_interval(profile, 0.1) == pytest.approx(133.33, rel=0.001)

    def test_miss_interval(self):
        profile = AppProfile("x", apki=5.0, base_cpi=123.33 / 200.0, mlp=2.0)
        core = OutOfOrderCore(200.0)
        # Tmiss = c/p + M = 1233.3 + 100
        assert core.miss_interval(profile, 0.1) == pytest.approx(1333.3, rel=0.001)

    def test_zero_miss_ratio_infinite_miss_interval(self):
        profile = AppProfile("x", apki=5.0, base_cpi=1.0, mlp=2.0)
        core = OutOfOrderCore(200.0)
        assert core.miss_interval(profile, 0.0) == float("inf")


class TestCoreKinds:
    def test_ooo_scales_penalty_by_mlp(self, profile):
        core = OutOfOrderCore(200.0)
        assert core.miss_penalty(profile) == pytest.approx(100.0)

    def test_inorder_full_penalty_and_unit_cpi(self, profile):
        core = InOrderCore(200.0)
        assert core.miss_penalty(profile) == pytest.approx(200.0)
        assert core.base_cpi(profile) == 1.0

    def test_inorder_more_sensitive_than_ooo(self, profile):
        """Figure 11's premise: in-order cores suffer more per miss."""
        ooo = OutOfOrderCore(200.0)
        inorder = InOrderCore(200.0)
        ooo_slowdown = ooo.cpi(profile, 0.5) / ooo.cpi(profile, 0.0)
        inorder_slowdown = inorder.cpi(profile, 0.5) / inorder.cpi(profile, 0.0)
        assert inorder_slowdown > ooo_slowdown

    def test_cpi_monotone_in_miss_ratio(self, profile):
        core = OutOfOrderCore(200.0)
        cpis = [core.cpi(profile, p) for p in (0.0, 0.25, 0.5, 1.0)]
        assert cpis == sorted(cpis)

    def test_ipc_is_cpi_inverse(self, profile):
        core = OutOfOrderCore(200.0)
        assert core.ipc(profile, 0.3) == pytest.approx(1.0 / core.cpi(profile, 0.3))

    def test_cycles_for(self, profile):
        core = OutOfOrderCore(200.0)
        assert core.cycles_for(profile, 1000, 0.0) == pytest.approx(
            1000 * profile.base_cpi
        )
        with pytest.raises(ValueError):
            core.cycles_for(profile, -1, 0.0)

    def test_miss_ratio_validation(self, profile):
        core = OutOfOrderCore(200.0)
        with pytest.raises(ValueError):
            core.cpi(profile, 1.5)
        with pytest.raises(ValueError):
            core.cpi(profile, -0.1)

    def test_factory(self):
        assert isinstance(make_core_model("ooo", 200.0), OutOfOrderCore)
        assert isinstance(make_core_model("inorder", 200.0), InOrderCore)
        with pytest.raises(ValueError):
            make_core_model("quantum", 200.0)

    def test_latency_validation(self):
        with pytest.raises(ValueError):
            OutOfOrderCore(0.0)
