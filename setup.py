"""Legacy-setuptools shim.

All metadata lives in pyproject.toml; this file only enables editable
installs (`pip install -e .`) on environments whose setuptools predates
PEP 660 support.
"""

from setuptools import setup

setup()
